"""Star schemas: dimensions with surrogate keys, facts, conformed dimensions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import EIIError
from repro.common.relation import Relation
from repro.common.types import DataType
from repro.storage.catalog import Database


class DimensionTable:
    """A dimension with generated surrogate keys and SCD type-1 updates.

    Schema: `(sk INT, natural_key, attr...)`. `upsert` returns the surrogate
    key for a natural key, inserting or overwriting attributes in place
    (type 1: history is not kept — Bitton's "persist data to keep history"
    guideline is about fact tables, exercised in the advisor tests).
    """

    def __init__(
        self,
        db: Database,
        name: str,
        natural_key: tuple,
        attributes: Sequence[tuple],
    ):
        columns = [("sk", DataType.INT), natural_key] + list(attributes)
        self.table = db.create_table(name, columns, primary_key=["sk"])
        self.name = name
        self._next_sk = 1
        self._sk_by_natural: dict = {}

    def upsert(self, natural_value, attributes: Sequence) -> int:
        """Insert or update one member; returns its surrogate key."""
        sk = self._sk_by_natural.get(natural_value)
        if sk is None:
            sk = self._next_sk
            self._next_sk += 1
            self._sk_by_natural[natural_value] = sk
            self.table.insert((sk, natural_value) + tuple(attributes))
        else:
            row = (sk, natural_value) + tuple(attributes)
            self.table.update_where(
                lambda existing: existing[0] == sk, lambda _existing: row
            )
        return sk

    def surrogate_for(self, natural_value) -> Optional[int]:
        return self._sk_by_natural.get(natural_value)

    def members(self) -> Relation:
        return self.table.scan()

    def __len__(self):
        return len(self.table)


class FactTable:
    """A fact table whose foreign keys are dimension surrogate keys."""

    def __init__(
        self,
        db: Database,
        name: str,
        dimension_keys: Sequence[str],
        measures: Sequence[tuple],
    ):
        columns = [(key, DataType.INT) for key in dimension_keys] + list(measures)
        self.table = db.create_table(name, columns)
        self.name = name
        self.dimension_keys = list(dimension_keys)

    def load(self, rows) -> int:
        return self.table.insert_many(rows)

    def clear(self) -> None:
        self.table.clear()

    def __len__(self):
        return len(self.table)


@dataclass
class StarSchema:
    """A named set of dimensions around fact tables, in one warehouse DB.

    A dimension registered here can be attached to several fact tables —
    that is a *conformed dimension*, which Bitton's virtualization
    guideline 1 suggests sharing (virtually) across marts instead of
    copying. The advisor experiments probe exactly that choice.
    """

    db: Database
    dimensions: dict = field(default_factory=dict)
    facts: dict = field(default_factory=dict)

    def add_dimension(
        self, name: str, natural_key: tuple, attributes: Sequence[tuple]
    ) -> DimensionTable:
        if name in self.dimensions:
            raise EIIError(f"dimension {name!r} already exists")
        dim = DimensionTable(self.db, name, natural_key, attributes)
        self.dimensions[name] = dim
        return dim

    def add_fact(
        self, name: str, dimension_names: Sequence[str], measures: Sequence[tuple]
    ) -> FactTable:
        if name in self.facts:
            raise EIIError(f"fact table {name!r} already exists")
        for dim_name in dimension_names:
            if dim_name not in self.dimensions:
                raise EIIError(f"unknown dimension {dim_name!r}")
        keys = [f"{dim_name}_sk" for dim_name in dimension_names]
        fact = FactTable(self.db, name, keys, measures)
        self.facts[name] = fact
        return fact

    def dimension(self, name: str) -> DimensionTable:
        dim = self.dimensions.get(name)
        if dim is None:
            raise EIIError(f"unknown dimension {name!r}")
        return dim

    def fact(self, name: str) -> FactTable:
        fact = self.facts.get(name)
        if fact is None:
            raise EIIError(f"unknown fact table {name!r}")
        return fact
