"""Data warehouse + ETL: the technology EII is measured against.

Bitton's §3 argues EII "will not replace the data warehouse"; the advisor
experiments (E1, E5, E14) need a real ETL baseline to compare against. This
package implements it end-to-end: extractors pull relations out of sources,
a transform pipeline cleans and conforms them, loaders fill dimension and
fact tables (surrogate keys, SCD type 1), and `Warehouse` tracks refresh
cost and staleness so the cost model has real numbers.
"""

from repro.warehouse.etl import (
    EtlJob,
    EtlRunStats,
    Warehouse,
    clean_strings,
    dedupe_on,
    drop_nulls,
    filter_rows,
    map_rows,
    rename_columns,
)
from repro.warehouse.star import DimensionTable, FactTable, StarSchema

__all__ = [
    "DimensionTable",
    "EtlJob",
    "EtlRunStats",
    "FactTable",
    "StarSchema",
    "Warehouse",
    "clean_strings",
    "dedupe_on",
    "drop_nulls",
    "filter_rows",
    "map_rows",
    "rename_columns",
]
