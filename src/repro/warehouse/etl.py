"""Extract-transform-load pipelines and the warehouse container."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import EIIError
from repro.common.relation import Relation
from repro.common.schema import RelSchema
from repro.engine.executor import LocalEngine
from repro.storage.catalog import Database

#: Simulated seconds the pipeline charges per row moved through a job.
ETL_SECONDS_PER_ROW = 5e-5
#: Fixed simulated overhead per job run (connections, staging, commit).
ETL_JOB_OVERHEAD_S = 0.5


# -- transform combinators ------------------------------------------------------


def map_rows(fn: Callable[[tuple], tuple], schema: Optional[RelSchema] = None):
    """Row-wise transform; pass `schema` when the shape changes."""

    def transform(relation: Relation) -> Relation:
        out_schema = schema if schema is not None else relation.schema
        return Relation(out_schema, [fn(row) for row in relation.rows])

    return transform


def filter_rows(predicate: Callable[[tuple], bool]):
    def transform(relation: Relation) -> Relation:
        return Relation(relation.schema, [r for r in relation.rows if predicate(r)])

    return transform


def rename_columns(names: Sequence[str]):
    def transform(relation: Relation) -> Relation:
        return Relation(relation.schema.rename(list(names)), relation.rows)

    return transform


def clean_strings(columns: Optional[Sequence[str]] = None):
    """Trim whitespace and collapse empty strings to NULL (data cleaning)."""

    def transform(relation: Relation) -> Relation:
        positions = (
            [relation.schema.index_of(name) for name in columns]
            if columns is not None
            else [
                i
                for i, _ in enumerate(relation.schema)
            ]
        )
        out = []
        for row in relation.rows:
            new_row = list(row)
            for position in positions:
                value = new_row[position]
                if isinstance(value, str):
                    value = value.strip()
                    new_row[position] = value if value else None
            out.append(tuple(new_row))
        return Relation(relation.schema, out)

    return transform


def drop_nulls(columns: Sequence[str]):
    """Reject rows with NULLs in required columns."""

    def transform(relation: Relation) -> Relation:
        positions = [relation.schema.index_of(name) for name in columns]
        kept = [
            row
            for row in relation.rows
            if all(row[p] is not None for p in positions)
        ]
        return Relation(relation.schema, kept)

    return transform


def dedupe_on(columns: Sequence[str]):
    """Keep the first row per key (ETL de-duplication)."""

    def transform(relation: Relation) -> Relation:
        positions = [relation.schema.index_of(name) for name in columns]
        seen: set = set()
        out = []
        for row in relation.rows:
            key = tuple(row[p] for p in positions)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return Relation(relation.schema, out)

    return transform


# -- jobs -------------------------------------------------------------------------


@dataclass
class EtlRunStats:
    job: str
    rows_extracted: int
    rows_loaded: int
    rows_rejected: int
    seconds: float  # simulated ETL time


@dataclass
class EtlJob:
    """One extract → transform* → load pipeline into a warehouse table.

    `extract` returns a Relation (from a DataSource component query, a
    federated query, or anything else). The target table is truncated and
    reloaded atomically within a transaction (classic full refresh); use
    `incremental=True` with a primary-keyed target for upsert semantics.
    """

    name: str
    extract: Callable[[], Relation]
    target_table: str
    transforms: Sequence[Callable[[Relation], Relation]] = ()
    incremental: bool = False

    def run(self, warehouse: "Warehouse") -> EtlRunStats:
        extracted = self.extract()
        relation = extracted
        for transform in self.transforms:
            relation = transform(relation)
        table = warehouse.db.table(self.target_table)
        if len(relation.schema) != len(table.schema):
            raise EIIError(
                f"job {self.name!r}: shape {len(relation.schema)} does not match "
                f"target {self.target_table!r} width {len(table.schema)}"
            )
        loaded = 0
        if self.incremental:
            pk_positions = [
                table.schema.index_of(col) for col in table.primary_key
            ]
            for row in relation.rows:
                key = tuple(row[i] for i in pk_positions)
                if table.get(*key) is not None:
                    table.update_where(
                        lambda existing, key=key: tuple(
                            existing[i] for i in pk_positions
                        ) == key,
                        lambda _existing, row=row: row,
                    )
                else:
                    table.insert(row)
                loaded += 1
        else:
            with warehouse.db.begin() as txn:
                txn.delete_where(self.target_table, lambda row: True)
                txn.insert_many(self.target_table, relation.rows)
            loaded = len(relation)
        seconds = ETL_JOB_OVERHEAD_S + len(extracted) * ETL_SECONDS_PER_ROW
        return EtlRunStats(
            self.name,
            rows_extracted=len(extracted),
            rows_loaded=loaded,
            rows_rejected=len(extracted) - len(relation),
            seconds=seconds,
        )


class Warehouse:
    """The persistent store ETL feeds, with refresh/staleness accounting."""

    def __init__(self, name: str = "warehouse", clock=time.time):
        self.db = Database(name)
        self.engine = LocalEngine(self.db)
        self.clock = clock
        self.jobs: list[EtlJob] = []
        self.last_refresh: Optional[float] = None
        self.refresh_count = 0
        self.total_etl_seconds = 0.0
        self.run_log: list[EtlRunStats] = []

    def add_job(self, job: EtlJob) -> EtlJob:
        self.jobs.append(job)
        return job

    def refresh(self) -> list[EtlRunStats]:
        """Run every job (one warehouse load cycle)."""
        stats = [job.run(self) for job in self.jobs]
        self.last_refresh = self.clock()
        self.refresh_count += 1
        self.total_etl_seconds += sum(stat.seconds for stat in stats)
        self.run_log.extend(stats)
        return stats

    def staleness(self) -> float:
        if self.last_refresh is None:
            return float("inf")
        return max(self.clock() - self.last_refresh, 0.0)

    def query(self, sql: str) -> Relation:
        """Query the warehouse directly (fast local star-schema access)."""
        return self.engine.query(sql)
