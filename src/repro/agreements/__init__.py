"""Data service agreements: formal obligations over data supply chains.

Rosenthal §7: organizations need "agreements that capture the obligations
of each party in a formal language … the provider may be obligated to
provide data of a specified quality, and to notify the consumer if
reported data changes", with "automated violation detection for some
conditions". `DataServiceAgreement` declares obligations (freshness,
quality, availability, volume); `AgreementMonitor` evaluates them against
live context and logs violations (experiment E11).
"""

from repro.agreements.dsa import (
    AgreementMonitor,
    DataServiceAgreement,
    Obligation,
    Violation,
    availability_obligation,
    freshness_obligation,
    null_fraction_obligation,
    row_count_obligation,
)

__all__ = [
    "AgreementMonitor",
    "DataServiceAgreement",
    "Obligation",
    "Violation",
    "availability_obligation",
    "freshness_obligation",
    "null_fraction_obligation",
    "row_count_obligation",
]
