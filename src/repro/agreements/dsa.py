"""Agreement declarations, evaluation and the violation log."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class Obligation:
    """One formal condition the provider promises the consumer.

    `check(context)` returns None when satisfied or a human-readable
    violation description. `context` is whatever the monitor is given —
    typically a dict with the live relation, staleness, source handle.
    """

    name: str
    kind: str
    check: Callable[[dict], Optional[str]]


def freshness_obligation(max_staleness_s: float) -> Obligation:
    """Data must be no older than `max_staleness_s` (context: "staleness")."""

    def check(context: dict) -> Optional[str]:
        staleness = context.get("staleness")
        if staleness is None:
            return "no staleness measurement available"
        if staleness > max_staleness_s:
            return f"staleness {staleness:.1f}s exceeds {max_staleness_s:.1f}s"
        return None

    return Obligation(f"fresh<={max_staleness_s}s", "freshness", check)


def null_fraction_obligation(column: str, max_fraction: float) -> Obligation:
    """At most `max_fraction` NULLs in `column` (context: "relation")."""

    def check(context: dict) -> Optional[str]:
        relation = context.get("relation")
        if relation is None:
            return "no relation delivered"
        values = relation.column_values(column)
        if not values:
            return None
        fraction = sum(1 for v in values if v is None) / len(values)
        if fraction > max_fraction:
            return (
                f"null fraction {fraction:.2%} of {column!r} exceeds "
                f"{max_fraction:.2%}"
            )
        return None

    return Obligation(f"nulls({column})<={max_fraction}", "quality", check)


def row_count_obligation(minimum: int) -> Obligation:
    """The delivered relation must carry at least `minimum` rows."""

    def check(context: dict) -> Optional[str]:
        relation = context.get("relation")
        if relation is None:
            return "no relation delivered"
        if len(relation) < minimum:
            return f"row count {len(relation)} below minimum {minimum}"
        return None

    return Obligation(f"rows>={minimum}", "volume", check)


def availability_obligation() -> Obligation:
    """The source must admit external queries (context: "source")."""

    def check(context: dict) -> Optional[str]:
        source = context.get("source")
        if source is None:
            return "no source handle"
        if not source.capabilities.allows_external_queries:
            return f"source {source.name!r} refuses external queries"
        return None

    return Obligation("available", "availability", check)


@dataclass
class DataServiceAgreement:
    """Provider-consumer contract over one data product."""

    name: str
    provider: str
    consumer: str
    obligations: Sequence[Obligation]
    #: consumer-side duties (purpose limitation, protection) — recorded for
    #: audit; their enforcement is out of the monitor's scope by design.
    consumer_duties: Sequence[str] = ()


@dataclass(frozen=True)
class Violation:
    agreement: str
    obligation: str
    kind: str
    detail: str
    at: float


class AgreementMonitor:
    """Evaluates registered agreements and keeps the violation log."""

    def __init__(self, clock=time.time):
        self.clock = clock
        self._agreements: dict[str, DataServiceAgreement] = {}
        self.violations: list[Violation] = []

    def register(self, agreement: DataServiceAgreement) -> None:
        self._agreements[agreement.name] = agreement

    def agreements(self) -> list[DataServiceAgreement]:
        return sorted(self._agreements.values(), key=lambda a: a.name)

    def evaluate(self, name: str, context: dict) -> list[Violation]:
        """Check one agreement now; violations are returned and logged."""
        agreement = self._agreements[name]
        found = []
        for obligation in agreement.obligations:
            detail = obligation.check(context)
            if detail is not None:
                violation = Violation(
                    agreement.name, obligation.name, obligation.kind, detail, self.clock()
                )
                found.append(violation)
                self.violations.append(violation)
        return found

    def evaluate_all(self, contexts: dict) -> list[Violation]:
        """Check every agreement with its own context from `contexts`."""
        found = []
        for name in self._agreements:
            found.extend(self.evaluate(name, contexts.get(name, {})))
        return found

    def violations_for(self, agreement: str) -> list[Violation]:
        return [v for v in self.violations if v.agreement == agreement]
