"""Typed diagnostics: the currency of the static-analysis subsystem.

Every pass produces `Diagnostic`s — a stable code (`EII1xx` semantic,
`EII2xx` capability/binding, `EII3xx` mapping lint, `EII4xx` plan
invariants, `EII5xx` concurrency correctness), a severity, a best-effort
source span and a fix hint —
aggregated into an `AnalysisReport`. Engines running with `validate=True`
raise `AnalysisError` on any error-severity finding *before* a single byte
is shipped; the attached `MetricsCollector` is the zero-byte proof.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional

from repro.common.errors import EIIError, ParseError


class Severity(enum.IntEnum):
    """Ordering matters: a report is fatal iff it holds any ERROR."""

    INFO = 10
    WARNING = 20
    ERROR = 30


#: Registry of every stable diagnostic code. Passes assert membership so a
#: typo'd code fails loudly in tests rather than shipping a new code family.
CODES = {
    # EII1xx — SQL semantic analysis
    "EII100": "syntax error",
    "EII101": "unknown table",
    "EII102": "unknown column",
    "EII103": "ambiguous column reference",
    "EII104": "expression type mismatch",
    "EII105": "aggregate in WHERE",
    "EII106": "non-grouped column under GROUP BY",
    "EII107": "unknown function",
    "EII108": "duplicate table binding",
    "EII109": "UNION branch width mismatch",
    "EII110": "nested aggregate",
    "EII111": "HAVING without GROUP BY or aggregates",
    "EII112": "INSERT arity mismatch",
    # EII2xx — capability / binding-pattern feasibility
    "EII201": "binding pattern unsatisfied",
    "EII202": "source refuses external queries",
    "EII203": "predicate not pushable",
    "EII204": "scan-only source ships whole table",
    # EII3xx — GAV/LAV mapping lint
    "EII301": "view over unknown table",
    "EII302": "computed view column blocks updates",
    "EII303": "dead LAV view",
    "EII304": "redundant LAV views",
    "EII305": "cyclic view definition",
    "EII306": "unsafe LAV rule",
    "EII307": "conceptual attribute never exposed",
    # EII4xx — plan invariant verification
    "EII401": "fetch exceeds source capabilities",
    "EII402": "cartesian product",
    "EII403": "plan bookkeeping mismatch",
    "EII404": "incomplete dependency tags",
    "EII405": "degradable annotation on essential branch",
    # EII5xx — concurrency correctness (repro.analysis.concurrency)
    "EII501": "lock-order cycle (potential deadlock)",
    "EII502": "unguarded shared-state write",
    "EII503": "non-atomic check-then-act on guarded state",
    "EII504": "lockset race (conflicting accesses share no lock)",
    "EII505": "interleaving divergence from the serial oracle",
    "EII506": "concurrency-slot leak (acquired slots never released)",
    "EII507": "single-writer discipline violation",
}


@dataclass(frozen=True)
class SourceSpan:
    """A location in query/mapping text; offsets 0-based, line/column 1-based."""

    offset: int
    length: int
    line: int
    column: int

    def describe(self) -> str:
        return f"line {self.line}, column {self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, message, span and fix hint."""

    code: str
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    hint: Optional[str] = None
    #: where the finding came from: a file path (workspace lint), a view
    #: name, or "" for ad-hoc query analysis
    origin: str = ""

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def render(self) -> str:
        where = f" @ {self.span.describe()}" if self.span is not None else ""
        prefix = f"{self.origin}: " if self.origin else ""
        text = f"{prefix}{self.code} {self.severity.name.lower()}{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def with_origin(self, origin: str) -> "Diagnostic":
        return replace(self, origin=origin)


def error(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, **kwargs)


def warning(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, **kwargs)


def info(code: str, message: str, **kwargs) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, **kwargs)


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics with severity rollups."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found (warnings allowed)."""
        return not self.errors

    def codes(self) -> set:
        return {d.code for d in self.diagnostics}

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def headline(self) -> str:
        if not self.diagnostics:
            return "static analysis: no diagnostics"
        parts = []
        for label, found in (
            ("error", self.errors),
            ("warning", self.warnings),
        ):
            if found:
                plural = "s" if len(found) != 1 else ""
                parts.append(f"{len(found)} {label}{plural}")
        if not parts:
            parts.append(f"{len(self.diagnostics)} note(s)")
        listed = ", ".join(sorted({d.code for d in self.errors or self.diagnostics}))
        return f"static analysis found {' and '.join(parts)} ({listed})"

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)


class AnalysisError(EIIError):
    """Raised when `validate=True` analysis rejects a query before execution.

    `report` holds the full diagnostics; `metrics` — when provided by an
    engine — is the (zero-byte) `MetricsCollector` proving the rejection
    happened before any source was contacted.
    """

    def __init__(self, report: AnalysisReport, metrics=None):
        self.report = report
        self.metrics = metrics
        super().__init__(report.headline() + "\n" + report.render())


# ---------------------------------------------------------------------------
# Span helpers
# ---------------------------------------------------------------------------


def span_at(text: str, offset: int, length: int = 1) -> SourceSpan:
    """Build a span from a raw offset into `text`."""
    prefix = text[:offset]
    line = prefix.count("\n") + 1
    column = offset - (prefix.rfind("\n") + 1) + 1
    return SourceSpan(offset, length, line, column)


def span_of(text: Optional[str], name: str, occurrence: int = 1) -> Optional[SourceSpan]:
    """Best-effort span of identifier/keyword `name` in `text`, via the lexer.

    Returns None when no text is available (AST-only analysis) or the name
    does not appear as a token — diagnostics then simply carry no span.
    """
    if not text or not name:
        return None
    from repro.sql.lexer import tokenize

    try:
        tokens = tokenize(text)
    except ParseError:
        return None
    bare = name.split(".")[-1]
    count = 0
    for token in tokens:
        if token.kind in ("IDENT", "KEYWORD") and str(token.value).lower() == bare.lower():
            count += 1
            if count == occurrence:
                return SourceSpan(
                    token.position, len(str(token.value)), token.line, token.column
                )
    return None
