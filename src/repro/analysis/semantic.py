"""SQL semantic analysis against a table resolver (EII1xx diagnostics).

Mirrors the binder's checks — unknown/ambiguous names, aggregate placement,
UNION widths — but *collects* typed diagnostics instead of raising on the
first defect, and adds an expression type checker the binder does not have.
The resolver is duck-typed: anything with `resolve_table(name) -> RelSchema`
(a `Database` adapter, a `FederationCatalog`, a `GavMediator`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, error, span_of
from repro.common.errors import EIIError, SchemaError
from repro.common.schema import RelSchema
from repro.common.types import DataType, infer_type
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Select,
    Star,
    UnaryOp,
    UnionSelect,
    Update,
)
from repro.sql.exprutil import column_refs, contains_aggregate, walk
from repro.sql.functions import SCALAR_FUNCTIONS, is_aggregate_name
from repro.sql.printer import expr_to_sql

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_ARITHMETIC = ("+", "-", "*", "/", "%")
_NUMERIC = (DataType.INT, DataType.FLOAT)

#: Return types of scalar functions the checker knows; absent = unknown.
_SCALAR_RETURNS = {
    "LENGTH": DataType.INT,
    "YEAR": DataType.INT,
    "MONTH": DataType.INT,
    "DAY": DataType.INT,
    "FLOOR": DataType.INT,
    "CEIL": DataType.INT,
    "SIGN": DataType.INT,
    "UPPER": DataType.STRING,
    "LOWER": DataType.STRING,
    "TRIM": DataType.STRING,
    "SUBSTR": DataType.STRING,
    "SUBSTRING": DataType.STRING,
    "CONCAT": DataType.STRING,
    "REPLACE": DataType.STRING,
    "SQRT": DataType.FLOAT,
    "POWER": DataType.FLOAT,
}

_STRING_ARG_FUNCTIONS = {"UPPER", "LOWER", "TRIM", "LENGTH", "SUBSTR", "SUBSTRING", "REPLACE"}
_NUMERIC_ARG_FUNCTIONS = {"ABS", "ROUND", "FLOOR", "CEIL", "SQRT", "SIGN", "MOD", "POWER"}
_DATE_ARG_FUNCTIONS = {"YEAR", "MONTH", "DAY"}


def analyze_statement(stmt, resolver, text: Optional[str] = None) -> List[Diagnostic]:
    """Semantic diagnostics for a parsed statement (never raises)."""
    diags: List[Diagnostic] = []
    if isinstance(stmt, UnionSelect):
        widths: List[Optional[int]] = []
        for branch in stmt.selects:
            checker = _SelectChecker(branch, resolver, text, diags)
            checker.run()
            widths.append(checker.output_width)
        known = [w for w in widths if w is not None]
        if len(known) == len(widths) and len(set(known)) > 1:
            diags.append(
                error(
                    "EII109",
                    f"UNION branches have differing widths: {sorted(set(known))}",
                    span=span_of(text, "UNION"),
                    hint="every branch must project the same number of columns",
                )
            )
    elif isinstance(stmt, Select):
        _SelectChecker(stmt, resolver, text, diags).run()
    elif isinstance(stmt, Insert):
        _check_insert(stmt, resolver, text, diags)
    elif isinstance(stmt, Update):
        _check_update(stmt, resolver, text, diags)
    elif isinstance(stmt, Delete):
        _check_delete(stmt, resolver, text, diags)
    return diags


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


class _SelectChecker:
    def __init__(self, stmt: Select, resolver, text: Optional[str], diags: List[Diagnostic]):
        self.stmt = stmt
        self.resolver = resolver
        self.text = text
        self.diags = diags
        self.schema: Optional[RelSchema] = None  # None until tables resolve
        self.output_width: Optional[int] = None

    def run(self) -> None:
        schema = self._resolve_tables()
        self._compute_width(schema)
        self._check_aggregate_placement()
        self._check_functions()
        if schema is None:
            return  # suppress column/type cascades under unknown tables
        self.schema = schema
        aliases = {
            item.alias.lower() for item in self.stmt.items if item.alias
        }
        for context, expr, allow_aliases in self._expressions():
            self._check_refs(context, expr, schema, aliases if allow_aliases else set())
        self._check_grouping(schema)
        self._type_check(schema)

    # -- tables ---------------------------------------------------------------

    def _resolve_tables(self) -> Optional[RelSchema]:
        parts: List[RelSchema] = []
        seen: dict = {}
        unknown = False
        for ref in self.stmt.tables():
            binding = ref.binding.lower()
            if binding in seen:
                self.diags.append(
                    error(
                        "EII108",
                        f"duplicate table binding {ref.binding!r}",
                        span=span_of(self.text, ref.binding, occurrence=2),
                        hint="alias one of the occurrences (e.g. AS t2)",
                    )
                )
            seen[binding] = ref
            try:
                schema = self.resolver.resolve_table(ref.name)
            except EIIError as exc:
                unknown = True
                self.diags.append(
                    error(
                        "EII101",
                        f"unknown table {ref.name!r}",
                        span=span_of(self.text, ref.name),
                        hint=str(exc),
                    )
                )
                continue
            parts.append(schema.with_qualifier(ref.binding))
        if unknown or not parts:
            return None
        combined = parts[0]
        for part in parts[1:]:
            combined = combined.concat(part)
        return combined

    def _compute_width(self, schema: Optional[RelSchema]) -> None:
        width = 0
        for item in self.stmt.items:
            if isinstance(item.expr, Star):
                if schema is None:
                    self.output_width = None
                    return
                qualifier = item.expr.qualifier
                width += sum(
                    1
                    for column in schema
                    if qualifier is None
                    or (column.qualifier or "").lower() == qualifier.lower()
                )
            else:
                width += 1
        self.output_width = width

    # -- expression inventory ---------------------------------------------------

    def _expressions(self) -> List[Tuple[str, Expr, bool]]:
        out: List[Tuple[str, Expr, bool]] = []
        for item in self.stmt.items:
            if not isinstance(item.expr, Star):
                out.append(("SELECT", item.expr, False))
        for join in self.stmt.joins:
            if join.condition is not None:
                out.append(("ON", join.condition, False))
        if self.stmt.where is not None:
            out.append(("WHERE", self.stmt.where, False))
        for expr in self.stmt.group_by:
            out.append(("GROUP BY", expr, False))
        if self.stmt.having is not None:
            out.append(("HAVING", self.stmt.having, True))
        for order in self.stmt.order_by:
            out.append(("ORDER BY", order.expr, True))
        return out

    # -- name resolution ----------------------------------------------------------

    def _check_refs(self, context: str, expr: Expr, schema: RelSchema, aliases: set) -> None:
        for ref in column_refs(expr):
            if ref.qualifier is None and ref.name.lower() in aliases:
                continue  # HAVING/ORDER BY may target select-list aliases
            matches = sum(1 for column in schema if column.matches(ref.name, ref.qualifier))
            if matches == 1:
                continue
            if matches == 0:
                self.diags.append(
                    error(
                        "EII102",
                        f"in {context}: unknown column {ref}",
                        span=span_of(self.text, ref.name),
                        hint=f"available: {', '.join(schema.qualified_names)}",
                    )
                )
            else:
                self.diags.append(
                    error(
                        "EII103",
                        f"in {context}: ambiguous column reference {ref}",
                        span=span_of(self.text, ref.name),
                        hint="qualify the column with its table binding",
                    )
                )

    # -- aggregates ---------------------------------------------------------------

    def _check_aggregate_placement(self) -> None:
        stmt = self.stmt
        if stmt.where is not None and contains_aggregate(stmt.where):
            self.diags.append(
                error(
                    "EII105",
                    "aggregates are not allowed in WHERE",
                    span=span_of(self.text, "WHERE"),
                    hint="filter aggregated values with HAVING instead",
                )
            )
        has_aggregate = False
        for _, expr, _allow in self._expressions():
            for node in walk(expr):
                if isinstance(node, FuncCall) and is_aggregate_name(node.name):
                    has_aggregate = True
                    if any(contains_aggregate(arg) for arg in node.args):
                        self.diags.append(
                            error(
                                "EII110",
                                f"nested aggregate in {expr_to_sql(node)}",
                                span=span_of(self.text, node.name),
                                hint="compute the inner aggregate in a view first",
                            )
                        )
        if stmt.having is not None and not stmt.group_by and not has_aggregate:
            self.diags.append(
                error(
                    "EII111",
                    "HAVING requires GROUP BY or aggregates",
                    span=span_of(self.text, "HAVING"),
                    hint="use WHERE for row-level filters",
                )
            )

    def _check_functions(self) -> None:
        for _, expr, _allow in self._expressions():
            for node in walk(expr):
                if isinstance(node, FuncCall):
                    name = node.name.upper()
                    if not is_aggregate_name(name) and name not in SCALAR_FUNCTIONS:
                        self.diags.append(
                            error(
                                "EII107",
                                f"unknown function {node.name!r}",
                                span=span_of(self.text, node.name),
                                hint=f"known scalars: {', '.join(sorted(SCALAR_FUNCTIONS))}",
                            )
                        )

    def _check_grouping(self, schema: RelSchema) -> None:
        if not self.stmt.group_by:
            return
        group_positions: set = set()
        group_keys: set = set()
        for expr in self.stmt.group_by:
            group_keys.add(expr_to_sql(expr).lower())
            if isinstance(expr, ColumnRef):
                try:
                    group_positions.add(schema.index_of(expr.name, expr.qualifier))
                except SchemaError:
                    pass

        def offenders(expr: Expr) -> List[ColumnRef]:
            if expr_to_sql(expr).lower() in group_keys:
                return []
            if isinstance(expr, FuncCall) and is_aggregate_name(expr.name):
                return []
            if isinstance(expr, ColumnRef):
                try:
                    position = schema.index_of(expr.name, expr.qualifier)
                except SchemaError:
                    return []
                return [] if position in group_positions else [expr]
            from repro.sql.exprutil import children

            out: List[ColumnRef] = []
            for child in children(expr):
                out.extend(offenders(child))
            return out

        for item in self.stmt.items:
            if isinstance(item.expr, Star):
                continue
            for ref in offenders(item.expr):
                self.diags.append(
                    error(
                        "EII106",
                        f"column {ref} must appear in GROUP BY or inside an aggregate",
                        span=span_of(self.text, ref.name),
                        hint=f"add {ref} to GROUP BY or wrap it in MIN()/MAX()",
                    )
                )

    # -- type checking -------------------------------------------------------------

    def _type_check(self, schema: RelSchema) -> None:
        for context, expr, _allow in self._expressions():
            result = self._infer(expr, schema)
            if context in ("WHERE", "HAVING", "ON") and _concrete(result) and result is not DataType.BOOL:
                self._mismatch(
                    f"{context} condition has type {result.value}, expected bool", expr
                )

    def _infer(self, expr: Expr, schema: RelSchema) -> Optional[DataType]:
        """Best-effort type of `expr`; None = unknown. Emits EII104 findings."""
        if isinstance(expr, Literal):
            try:
                return infer_type(expr.value)
            except EIIError:
                return None
        if isinstance(expr, ColumnRef):
            try:
                return schema.column(expr.name, expr.qualifier).dtype
            except SchemaError:
                return None  # already reported as EII102/EII103
        if isinstance(expr, Star):
            return None
        if isinstance(expr, BinaryOp):
            left = self._infer(expr.left, schema)
            right = self._infer(expr.right, schema)
            if expr.op in ("AND", "OR"):
                for side, side_type in ((expr.left, left), (expr.right, right)):
                    if _concrete(side_type) and side_type is not DataType.BOOL:
                        self._mismatch(
                            f"{expr.op} operand {expr_to_sql(side)} has type "
                            f"{side_type.value}, expected bool",
                            side,
                        )
                return DataType.BOOL
            if expr.op in _COMPARISONS:
                if _concrete(left) and _concrete(right) and not _comparable(left, right):
                    self._mismatch(
                        f"cannot compare {left.value} to {right.value} in "
                        f"{expr_to_sql(expr)}",
                        expr,
                    )
                return DataType.BOOL
            if expr.op == "||":
                for side, side_type in ((expr.left, left), (expr.right, right)):
                    if _concrete(side_type) and side_type is not DataType.STRING:
                        self._mismatch(
                            f"|| operand {expr_to_sql(side)} has type {side_type.value}, "
                            "expected string",
                            side,
                        )
                return DataType.STRING
            if expr.op in _ARITHMETIC:
                for side, side_type in ((expr.left, left), (expr.right, right)):
                    if _concrete(side_type) and side_type not in _NUMERIC:
                        self._mismatch(
                            f"arithmetic on non-numeric operand {expr_to_sql(side)} "
                            f"({side_type.value})",
                            side,
                        )
                if left is DataType.FLOAT or right is DataType.FLOAT or expr.op == "/":
                    return DataType.FLOAT
                if left is DataType.INT and right is DataType.INT:
                    return DataType.INT
                return None
            return None
        if isinstance(expr, UnaryOp):
            operand = self._infer(expr.operand, schema)
            if expr.op == "NOT":
                if _concrete(operand) and operand is not DataType.BOOL:
                    self._mismatch(
                        f"NOT operand has type {operand.value}, expected bool", expr
                    )
                return DataType.BOOL
            if _concrete(operand) and operand not in _NUMERIC:
                self._mismatch(
                    f"negation of non-numeric operand ({operand.value})", expr
                )
            return operand
        if isinstance(expr, FuncCall):
            return self._infer_call(expr, schema)
        if isinstance(expr, IsNull):
            self._infer(expr.operand, schema)
            return DataType.BOOL
        if isinstance(expr, InList):
            operand = self._infer(expr.operand, schema)
            for item in expr.items:
                item_type = self._infer(item, schema)
                if _concrete(operand) and _concrete(item_type) and not _comparable(operand, item_type):
                    self._mismatch(
                        f"IN list item {expr_to_sql(item)} ({item_type.value}) is not "
                        f"comparable to {expr_to_sql(expr.operand)} ({operand.value})",
                        item,
                    )
            return DataType.BOOL
        if isinstance(expr, Like):
            for side in (expr.operand, expr.pattern):
                side_type = self._infer(side, schema)
                if _concrete(side_type) and side_type is not DataType.STRING:
                    self._mismatch(
                        f"LIKE operand {expr_to_sql(side)} has type {side_type.value}, "
                        "expected string",
                        side,
                    )
            return DataType.BOOL
        if isinstance(expr, Between):
            operand = self._infer(expr.operand, schema)
            for bound in (expr.low, expr.high):
                bound_type = self._infer(bound, schema)
                if _concrete(operand) and _concrete(bound_type) and not _comparable(operand, bound_type):
                    self._mismatch(
                        f"BETWEEN bound {expr_to_sql(bound)} ({bound_type.value}) is not "
                        f"comparable to {expr_to_sql(expr.operand)} ({operand.value})",
                        bound,
                    )
            return DataType.BOOL
        if isinstance(expr, CaseWhen):
            branch_types = set()
            for condition, value in expr.whens:
                cond_type = self._infer(condition, schema)
                if _concrete(cond_type) and cond_type is not DataType.BOOL:
                    self._mismatch(
                        f"CASE condition has type {cond_type.value}, expected bool",
                        condition,
                    )
                branch_types.add(self._infer(value, schema))
            if expr.default is not None:
                branch_types.add(self._infer(expr.default, schema))
            return branch_types.pop() if len(branch_types) == 1 else None
        return None

    def _infer_call(self, call: FuncCall, schema: RelSchema) -> Optional[DataType]:
        name = call.name.upper()
        arg_types = [
            None if isinstance(arg, Star) else self._infer(arg, schema)
            for arg in call.args
        ]
        if is_aggregate_name(name):
            if name == "COUNT":
                return DataType.INT
            first = arg_types[0] if arg_types else None
            if name in ("SUM", "AVG") and _concrete(first) and first not in _NUMERIC:
                self._mismatch(
                    f"{name} over non-numeric argument "
                    f"{expr_to_sql(call.args[0])} ({first.value})",
                    call,
                )
            if name == "AVG":
                return DataType.FLOAT
            return first
        checked = zip(call.args, arg_types)
        if name in _STRING_ARG_FUNCTIONS:
            arg, first = next(checked, (None, None))
            if arg is not None and _concrete(first) and first is not DataType.STRING:
                self._mismatch(
                    f"{name} argument {expr_to_sql(arg)} has type {first.value}, "
                    "expected string",
                    arg,
                )
        elif name in _NUMERIC_ARG_FUNCTIONS:
            for arg, arg_type in checked:
                if _concrete(arg_type) and arg_type not in _NUMERIC:
                    self._mismatch(
                        f"{name} argument {expr_to_sql(arg)} has type "
                        f"{arg_type.value}, expected a number",
                        arg,
                    )
        elif name in _DATE_ARG_FUNCTIONS:
            arg, first = next(checked, (None, None))
            if arg is not None and _concrete(first) and first is not DataType.DATE:
                self._mismatch(
                    f"{name} argument {expr_to_sql(arg)} has type {first.value}, "
                    "expected a date",
                    arg,
                )
        return _SCALAR_RETURNS.get(name)

    def _mismatch(self, message: str, expr: Expr) -> None:
        anchor = next(iter(column_refs(expr)), None)
        self.diags.append(
            error(
                "EII104",
                message,
                span=span_of(self.text, anchor.name) if anchor is not None else None,
                hint="check column types with \\tables or the catalog schema",
            )
        )


def _concrete(data_type: Optional[DataType]) -> bool:
    return data_type is not None and data_type is not DataType.ANY


def _comparable(a: DataType, b: DataType) -> bool:
    return a.accepts(b) or b.accepts(a)


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


def _resolve_or_report(table: str, resolver, text, diags) -> Optional[RelSchema]:
    try:
        return resolver.resolve_table(table)
    except EIIError as exc:
        diags.append(
            error(
                "EII101",
                f"unknown table {table!r}",
                span=span_of(text, table),
                hint=str(exc),
            )
        )
        return None


def _check_insert(stmt: Insert, resolver, text, diags: List[Diagnostic]) -> None:
    schema = _resolve_or_report(stmt.table, resolver, text, diags)
    if schema is None:
        return
    target_columns = list(stmt.columns) if stmt.columns else schema.names
    for name in stmt.columns:
        if not schema.has(name):
            diags.append(
                error(
                    "EII102",
                    f"unknown column {name!r} in INSERT into {stmt.table!r}",
                    span=span_of(text, name),
                    hint=f"available: {', '.join(schema.names)}",
                )
            )
    width = len(target_columns)
    for index, row in enumerate(stmt.rows):
        if len(row) != width:
            diags.append(
                error(
                    "EII112",
                    f"INSERT row {index + 1} has {len(row)} values for "
                    f"{width} columns",
                    span=span_of(text, "VALUES"),
                    hint="match the VALUES tuple to the column list",
                )
            )
            continue
        for name, expr in zip(target_columns, row):
            if not isinstance(expr, Literal) or not schema.has(name):
                continue
            try:
                value_type = infer_type(expr.value)
            except EIIError:
                continue
            target = schema.column(name).dtype
            if _concrete(value_type) and not target.accepts(value_type):
                diags.append(
                    error(
                        "EII104",
                        f"INSERT value {expr_to_sql(expr)} ({value_type.value}) does "
                        f"not fit column {name!r} ({target.value})",
                        span=span_of(text, name),
                        hint="cast or correct the literal",
                    )
                )


def _check_update(stmt: Update, resolver, text, diags: List[Diagnostic]) -> None:
    schema = _resolve_or_report(stmt.table, resolver, text, diags)
    if schema is None:
        return
    select = Select(items=(), from_tables=())  # reuse the expression machinery
    checker = _SelectChecker(select, resolver, text, diags)
    checker.schema = schema
    for name, value in stmt.assignments:
        if not schema.has(name):
            diags.append(
                error(
                    "EII102",
                    f"unknown column {name!r} in UPDATE of {stmt.table!r}",
                    span=span_of(text, name),
                    hint=f"available: {', '.join(schema.names)}",
                )
            )
            continue
        checker._check_refs("SET", value, schema, set())
        value_type = checker._infer(value, schema)
        target = schema.column(name).dtype
        if _concrete(value_type) and not target.accepts(value_type):
            diags.append(
                error(
                    "EII104",
                    f"assignment to {name!r} ({target.value}) from incompatible "
                    f"type {value_type.value}",
                    span=span_of(text, name),
                    hint="cast or correct the expression",
                )
            )
    if stmt.where is not None:
        if contains_aggregate(stmt.where):
            diags.append(
                error(
                    "EII105",
                    "aggregates are not allowed in WHERE",
                    span=span_of(text, "WHERE"),
                    hint="filter aggregated values with HAVING instead",
                )
            )
        checker._check_refs("WHERE", stmt.where, schema, set())
        checker._infer(stmt.where, schema)


def _check_delete(stmt: Delete, resolver, text, diags: List[Diagnostic]) -> None:
    schema = _resolve_or_report(stmt.table, resolver, text, diags)
    if schema is None or stmt.where is None:
        return
    select = Select(items=(), from_tables=())
    checker = _SelectChecker(select, resolver, text, diags)
    checker._check_refs("WHERE", stmt.where, schema, set())
    checker._infer(stmt.where, schema)
