"""Post-planning invariant verification (EII4xx diagnostics).

Run over a `FederatedPlan` in strict mode (`validate=True`), these checks
catch planner bugs *before* execution ships a byte: every pushed-down
component query must fit its source's declared capabilities, the plan's
fetch/bind-join bookkeeping must match the tree, dependency tags must be
complete (cache invalidation relies on them), accidental cartesian products
are flagged, and partial-result degradability annotations must only appear
where dropping a branch cannot fabricate wrong answers.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.federation.nodes import LogicalBindJoin, LogicalFetch
from repro.sql.ast import BinaryOp, ColumnRef, Expr, InList, Literal, Select, Star
from repro.sql.exprutil import column_refs, split_conjuncts
from repro.sql.printer import to_sql


def verify_plan(plan) -> List[Diagnostic]:
    """EII4xx diagnostics for a `FederatedPlan` (never raises)."""
    diags: List[Diagnostic] = []
    walked_fetches = []
    walked_binds = []
    for node in plan.root.walk():
        if isinstance(node, LogicalFetch):
            walked_fetches.append(node)
        elif isinstance(node, LogicalBindJoin):
            walked_binds.append(node)

    diags.extend(_check_bookkeeping(plan, walked_fetches, walked_binds))
    for node in walked_fetches:
        diags.extend(_check_fetch_capabilities(node))
        diags.extend(_check_tags(node, "fetch"))
        diags.extend(_check_fetch_connectivity(node))
    for node in walked_binds:
        diags.extend(_check_bind_capabilities(node))
        diags.extend(_check_tags(node, "bind join"))
    diags.extend(_check_cartesian(plan))
    diags.extend(_check_degradable(plan))
    return diags


# ---------------------------------------------------------------------------
# EII403 — plan bookkeeping
# ---------------------------------------------------------------------------


def _check_bookkeeping(plan, walked_fetches, walked_binds) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for label, walked, listed in (
        ("fetch", walked_fetches, plan.fetches),
        ("bind join", walked_binds, plan.bind_joins),
    ):
        walked_ids = {id(node) for node in walked}
        listed_ids = {id(node) for node in listed}
        for node in walked:
            if id(node) not in listed_ids:
                diags.append(
                    error(
                        "EII403",
                        f"{label} {node.label()} is in the plan tree but "
                        f"missing from the plan's {label} list",
                        hint="the executor would never prefetch/track it",
                    )
                )
        for node in listed:
            if id(node) not in walked_ids:
                diags.append(
                    error(
                        "EII403",
                        f"{label} {node.label()} is listed on the plan but "
                        "absent from the plan tree",
                        hint="stale bookkeeping: the node can never run",
                    )
                )
    return diags


# ---------------------------------------------------------------------------
# EII401 — capability conformance of pushed-down work
# ---------------------------------------------------------------------------


def _check_fetch_capabilities(node: LogicalFetch) -> List[Diagnostic]:
    reasons = _capability_reasons(node.stmt, node.source)
    if not reasons:
        return []
    return [
        error(
            "EII401",
            f"fetch {to_sql(node.stmt)} exceeds the capabilities of source "
            f"{node.source.name!r}",
            hint="; ".join(reasons),
        )
    ]


def _check_bind_capabilities(node: LogicalBindJoin) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    reasons = _capability_reasons(node.template, node.source)
    if reasons:
        diags.append(
            error(
                "EII401",
                f"bind-join template {to_sql(node.template)} exceeds the "
                f"capabilities of source {node.source.name!r}",
                hint="; ".join(reasons),
            )
        )
    required = _required_binding(node.template, node.source)
    if required is not None and node.right_key.name.lower() != required:
        diags.append(
            error(
                "EII401",
                f"bind join probes {node.source.name!r} on "
                f"{node.right_key.name!r} but the source demands a binding "
                f"on {required!r}",
                hint="the source would reject every component query",
            )
        )
    return diags


def _required_binding(stmt: Select, source) -> Optional[str]:
    for ref in stmt.tables():
        required = source.capabilities.required_binding(ref.name)
        if required is not None:
            return required
    return None


def _capability_reasons(stmt: Select, source) -> List[str]:
    """Why `stmt` cannot run at `source`; binding-supplier conjuncts exempt.

    A fetch against a binding-pattern source legitimately carries
    `col = literal` / `col IN (...)` on the required column even when the
    dialect (e.g. scan-only web services) supports no predicates at all —
    the wrapper consumes those conjuncts as call parameters.
    """
    from repro.wrappers.pushability import unsupported_reasons

    dialect = source.capabilities.dialect
    reasons: List[str] = []
    if len(stmt.tables()) > 1 and not dialect.supports_join:
        reasons.append(f"{dialect}: join pushdown not supported")
    if (stmt.group_by or stmt.having is not None) and not dialect.supports_aggregate:
        reasons.append(f"{dialect}: aggregate pushdown not supported")
    if (stmt.order_by or stmt.limit is not None) and not dialect.supports_sort_limit:
        reasons.append(f"{dialect}: sort/limit pushdown not supported")

    required = _required_binding(stmt, source)
    exprs: List[Expr] = []
    for item in stmt.items:
        exprs.append(item.expr)
    for conjunct in split_conjuncts(stmt.where):
        if required is not None and _supplies_binding(conjunct, required):
            continue
        exprs.append(conjunct)
    exprs.extend(stmt.group_by)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(order.expr for order in stmt.order_by)
    for join in stmt.joins:
        if join.condition is not None:
            exprs.append(join.condition)
    for expr in exprs:
        if isinstance(expr, (Star, ColumnRef)):
            continue
        reasons.extend(unsupported_reasons(expr, dialect))
    return reasons


def _supplies_binding(conjunct: Expr, required: str) -> bool:
    """`col = literal` or `col IN (literals)` on the required column."""
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
        sides = (conjunct.left, conjunct.right)
        for ref, other in (sides, sides[::-1]):
            if (
                isinstance(ref, ColumnRef)
                and isinstance(other, Literal)
                and ref.name.lower() == required
            ):
                return True
        return False
    if isinstance(conjunct, InList) and not conjunct.negated:
        return (
            isinstance(conjunct.operand, ColumnRef)
            and conjunct.operand.name.lower() == required
            and all(isinstance(item, Literal) for item in conjunct.items)
        )
    return False


# ---------------------------------------------------------------------------
# EII404 — dependency-tag completeness
# ---------------------------------------------------------------------------


def _check_tags(node, label: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    if not node.tables:
        diags.append(
            error(
                "EII404",
                f"{label} {node.label()} has no `tables` tags: replica "
                "failover cannot find alternate sources for it",
                hint="the planner must stamp the global table names it reads",
            )
        )
    missing = {str(t).lower() for t in node.tables} - {
        str(t).lower() for t in node.depends_on
    }
    if missing:
        diags.append(
            error(
                "EII404",
                f"{label} {node.label()} reads {sorted(missing)} but its "
                "cache-invalidation tags (`depends_on`) omit them",
                hint="writes to those tables would leave stale cache entries",
            )
        )
    return diags


# ---------------------------------------------------------------------------
# EII402 — accidental cartesian products
# ---------------------------------------------------------------------------


def _check_cartesian(plan) -> List[Diagnostic]:
    from repro.engine.logical import LogicalJoin

    diags: List[Diagnostic] = []
    for node in plan.root.walk():
        if (
            isinstance(node, LogicalJoin)
            and node.kind == "INNER"
            and node.condition is None
        ):
            diags.append(
                warning(
                    "EII402",
                    "plan contains an inner join with no condition "
                    "(cartesian product) at the assembly site",
                    hint="add a join predicate unless the cross product is "
                    "intentional (CROSS JOIN)",
                )
            )
    return diags


def _check_fetch_connectivity(node: LogicalFetch) -> List[Diagnostic]:
    """A multi-table fetch whose tables are not all equi-join-connected."""
    stmt = node.stmt
    bindings = [ref.binding.lower() for ref in stmt.tables()]
    if len(bindings) < 2:
        return []
    conjuncts: List[Expr] = list(split_conjuncts(stmt.where))
    for join in stmt.joins:
        conjuncts.extend(split_conjuncts(join.condition))
    # union-find over bindings connected by any multi-binding predicate
    parent = {b: b for b in bindings}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    known = set(bindings)
    for conjunct in conjuncts:
        touched: Set[str] = set()
        for ref in column_refs(conjunct):
            if ref.qualifier is not None and ref.qualifier.lower() in known:
                touched.add(ref.qualifier.lower())
            elif ref.qualifier is None:
                touched = set()  # unqualified: cannot attribute, be lenient
                break
        touched = {find(b) for b in touched}
        if len(touched) >= 2:
            first, *rest = touched
            for other in rest:
                parent[other] = first
    roots = {find(b) for b in bindings}
    if len(roots) < 2:
        return []
    return [
        warning(
            "EII402",
            f"fetch {to_sql(stmt)} joins {len(bindings)} tables but its "
            f"predicates leave {len(roots)} disconnected groups: the source "
            "computes a cartesian product",
            hint="connect every table with a join predicate",
        )
    ]


# ---------------------------------------------------------------------------
# EII405 — degradability soundness
# ---------------------------------------------------------------------------


def _check_degradable(plan) -> List[Diagnostic]:
    """Flag degradable marks on branches whose loss would fabricate answers.

    Recomputes the legal marking with the same traversal the engine uses
    (union arms and nullable sides of LEFT joins are non-essential) and
    reports any node marked degradable beyond it.
    """
    from repro.engine.logical import LogicalJoin, LogicalUnion

    allowed: Set[int] = set()

    def mark(node, degradable: bool) -> None:
        if isinstance(node, LogicalFetch):
            if degradable:
                allowed.add(id(node))
            return
        if isinstance(node, LogicalBindJoin):
            if degradable or node.kind == "LEFT":
                allowed.add(id(node))
            mark(node.left, degradable)
            return
        if isinstance(node, LogicalUnion):
            for child in node.children:
                mark(child, True)
            return
        if isinstance(node, LogicalJoin):
            mark(node.left, degradable)
            mark(node.right, degradable or node.kind == "LEFT")
            return
        for child in node.children:
            mark(child, degradable)

    mark(plan.root, False)
    diags: List[Diagnostic] = []
    for node in plan.root.walk():
        if not isinstance(node, (LogicalFetch, LogicalBindJoin)):
            continue
        if getattr(node, "degradable", False) and id(node) not in allowed:
            diags.append(
                error(
                    "EII405",
                    f"{node.label()} is marked degradable but feeds an "
                    "essential branch: dropping it would fabricate answers",
                    hint="only union arms and nullable LEFT-join sides may "
                    "degrade under partial_results",
                )
            )
    return diags
