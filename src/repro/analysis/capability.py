"""Capability & binding-pattern feasibility analysis (EII2xx diagnostics).

Statically proves whether a federated query *can* be answered given each
source's declared `SourceCapabilities` — before the planner runs and before
a single byte ships. The core is a fixpoint over binding patterns: a table
whose source demands a bound column is answerable once that column is bound
by a literal predicate, or equi-joined to a column of an already-answerable
table (a bind join will feed it values).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, error, info, span_of, warning
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    Literal,
    Select,
    UnionSelect,
)
from repro.sql.exprutil import column_refs, split_conjuncts
from repro.sql.printer import expr_to_sql


def analyze_capabilities(stmt, catalog, text: Optional[str] = None) -> List[Diagnostic]:
    """EII2xx diagnostics for a SELECT/UNION against a federation catalog."""
    diags: List[Diagnostic] = []
    if isinstance(stmt, UnionSelect):
        for branch in stmt.selects:
            diags.extend(_analyze_select(branch, catalog, text))
    elif isinstance(stmt, Select):
        diags.extend(_analyze_select(stmt, catalog, text))
    return diags


def _analyze_select(stmt: Select, catalog, text: Optional[str]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    #: binding (lower) -> catalog entry; skip unknown tables (EII101's job)
    entries: Dict[str, object] = {}
    for ref in stmt.tables():
        if catalog.has_table(ref.name):
            entries[ref.binding.lower()] = catalog.entry(ref.name)
    if not entries:
        return diags

    for binding, entry in entries.items():
        if not entry.source.capabilities.allows_external_queries:
            diags.append(
                error(
                    "EII202",
                    f"source {entry.source.name!r} (table {entry.global_name!r}) "
                    "does not admit external queries",
                    span=span_of(text, entry.global_name),
                    hint="replicate the table into the warehouse tier instead",
                )
            )

    conjuncts: List[Expr] = list(split_conjuncts(stmt.where))
    for join in stmt.joins:
        conjuncts.extend(split_conjuncts(join.condition))

    diags.extend(_check_binding_patterns(stmt, entries, conjuncts, text))
    diags.extend(_check_pushability(entries, conjuncts, text))
    return diags


# ---------------------------------------------------------------------------
# EII201 — binding-pattern fixpoint
# ---------------------------------------------------------------------------


def _check_binding_patterns(
    stmt: Select, entries: Dict[str, object], conjuncts: List[Expr], text
) -> List[Diagnostic]:
    required: Dict[str, str] = {}  # binding -> required column (lower)
    for binding, entry in entries.items():
        column = entry.source.capabilities.required_binding(entry.local_name)
        if column is not None:
            required[binding] = column

    bound: Set[str] = {b for b in entries if b not in required}
    # literal equality / IN on the required column satisfies it directly
    for binding, column in list(required.items()):
        if any(
            _binds_directly(conjunct, binding, column, entries)
            for conjunct in conjuncts
        ):
            bound.add(binding)

    # fixpoint: an equi-join from a bound table can feed the required column
    joins = [_equi_join(c, entries) for c in conjuncts]
    joins = [j for j in joins if j is not None]
    changed = True
    while changed:
        changed = False
        for binding, column in required.items():
            if binding in bound:
                continue
            for (left_binding, left_col), (right_binding, right_col) in joins:
                other = None
                if left_binding == binding and left_col == column:
                    other = right_binding
                elif right_binding == binding and right_col == column:
                    other = left_binding
                if other is not None and other in bound:
                    bound.add(binding)
                    changed = True
                    break

    diags: List[Diagnostic] = []
    for binding in sorted(set(required) - bound):
        entry = entries[binding]
        column = required[binding]
        diags.append(
            error(
                "EII201",
                f"table {entry.global_name!r} (source {entry.source.name!r}) "
                f"requires a binding on {column!r} and the query never supplies "
                "one",
                span=span_of(text, entry.global_name),
                hint=(
                    f"add WHERE {binding}.{column} = <value> or join "
                    f"{binding}.{column} to an unrestricted table"
                ),
            )
        )
    return diags


def _binds_directly(
    conjunct: Expr, binding: str, column: str, entries: Dict[str, object]
) -> bool:
    """True for `col = literal` / `col IN (literals)` on the required column."""
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
        sides = (conjunct.left, conjunct.right)
        for ref, other in (sides, sides[::-1]):
            if (
                isinstance(ref, ColumnRef)
                and isinstance(other, Literal)
                and _owner(ref, entries) == binding
                and ref.name.lower() == column
            ):
                return True
        return False
    if isinstance(conjunct, InList) and not conjunct.negated:
        ref = conjunct.operand
        return (
            isinstance(ref, ColumnRef)
            and all(isinstance(item, Literal) for item in conjunct.items)
            and _owner(ref, entries) == binding
            and ref.name.lower() == column
        )
    return False


def _equi_join(conjunct: Expr, entries: Dict[str, object]):
    """`(binding, col) = (binding, col)` across two distinct tables, or None."""
    if not (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return None
    left = _owner(conjunct.left, entries)
    right = _owner(conjunct.right, entries)
    if left is None or right is None or left == right:
        return None
    return (
        (left, conjunct.left.name.lower()),
        (right, conjunct.right.name.lower()),
    )


def _owner(ref: ColumnRef, entries: Dict[str, object]) -> Optional[str]:
    """Which binding owns a column reference; None when undecidable."""
    if ref.qualifier is not None:
        binding = ref.qualifier.lower()
        return binding if binding in entries else None
    owners = [
        binding
        for binding, entry in entries.items()
        if entry.schema.has(ref.name)
    ]
    return owners[0] if len(owners) == 1 else None


# ---------------------------------------------------------------------------
# EII203 / EII204 — shipped-work warnings
# ---------------------------------------------------------------------------


def _check_pushability(
    entries: Dict[str, object], conjuncts: List[Expr], text
) -> List[Diagnostic]:
    from repro.wrappers.pushability import unsupported_reasons

    diags: List[Diagnostic] = []
    for conjunct in conjuncts:
        owners = {
            _owner(ref, entries) for ref in column_refs(conjunct)
        }
        owners.discard(None)
        if len(owners) != 1:
            continue  # join predicates / cross-table residuals: planner's call
        binding = owners.pop()
        entry = entries[binding]
        capabilities = entry.source.capabilities
        if capabilities.dialect.fidelity == "scan_only":
            continue  # EII204 covers the whole-table shipping story
        if _binds_directly(
            conjunct,
            binding,
            capabilities.required_binding(entry.local_name) or "",
            entries,
        ):
            continue  # binding-supplier conjuncts are consumed, not pushed
        reasons = unsupported_reasons(conjunct, capabilities.dialect)
        if reasons:
            diags.append(
                warning(
                    "EII203",
                    f"predicate {expr_to_sql(conjunct)} cannot be pushed to "
                    f"source {entry.source.name!r}; it will be evaluated at "
                    "the mediator after shipping rows",
                    span=span_of(text, entry.global_name),
                    hint="; ".join(reasons),
                )
            )
    for binding, entry in sorted(entries.items()):
        capabilities = entry.source.capabilities
        if (
            capabilities.dialect.fidelity == "scan_only"
            and capabilities.required_binding(entry.local_name) is None
        ):
            diags.append(
                info(
                    "EII204",
                    f"table {entry.global_name!r} lives on scan-only source "
                    f"{entry.source.name!r}: the whole table ships regardless "
                    "of predicates",
                    span=span_of(text, entry.global_name),
                    hint="expect payload proportional to the full table size",
                )
            )
    return diags
