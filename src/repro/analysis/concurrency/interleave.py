"""Deterministic interleaving fuzzer (EII505/EII506): adversarial schedules.

Three differential scenarios, all judged against a serial oracle — the
same discipline as `test_sched_oracle.py`, but over *real* threads whose
interleavings are perturbed on purpose:

* `run_coalescing_scenario` — N threads race `InFlightRegistry
  .begin_or_attach` for one key. An `InterleaveSchedule` staggers their
  arrivals in a seeded order (host-flight loser, late attach after the
  host completed, …); every caller must still observe exactly the cold
  fetch's bytes, and with `force_coalesce=True` the upstream must be hit
  exactly once. Divergence is **EII505**.
* `run_limiter_scenario` — K threads pour through `SourceLimiter.slot`,
  optionally failing mid-slot; the observed peak must respect the cap
  and every slot must drain, else **EII506**.
* `fuzz_prefetch` — a whole `FederatedEngine.query` with the prefetch
  pool's fetches gated: each worker blocks at the top of
  `_FetchRuntime.fetch` until a seeded controller releases it, forcing
  fetch completion orders the pool would rarely produce. Rows and the
  metrics summary must be identical to an unperturbed run (**EII505**).

The scheduler is cooperative and name-based: worker threads `register`,
block at `point()`s, and `finish()` before any external wait, so the
seeded release order is reproducible run over run. A watchdog deadline
releases everything and marks the schedule `aborted` rather than hanging
the test process.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, error

_DEFAULT_TIMEOUT = 20.0


class InterleaveSchedule:
    """Seeded cooperative scheduler over named threads.

    Participants `register(name)` before starting, block at
    `point(name, label)` while running, and `finish(name)` when they stop
    taking schedule points (including just before an external wait such
    as `Flight.wait` — a thread blocked outside the scheduler must not
    count as schedulable). Whenever every live participant is blocked,
    one is released, chosen by the seeded RNG; `history` records the
    release order so a failing seed replays exactly.
    """

    def __init__(self, seed: int, timeout: float = _DEFAULT_TIMEOUT):
        self.seed = seed
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._registered: set = set()
        self._finished: set = set()
        self._blocked: dict = {}  # name -> token for the current point
        self._timeout = timeout
        self.history: List[str] = []
        self.aborted = False

    def register(self, name: str) -> None:
        with self._cond:
            self._registered.add(name)

    def finish(self, name: str) -> None:
        with self._cond:
            self._finished.add(name)
            self._blocked.pop(name, None)
            self._maybe_release()
            self._cond.notify_all()

    def point(self, name: str, label: str = "") -> None:
        """Block until the schedule releases this thread."""
        token = object()
        with self._cond:
            if self.aborted or name in self._finished:
                return
            self._blocked[name] = token
            self._maybe_release()
            deadline = time.monotonic() + self._timeout
            while self._blocked.get(name) is token and not self.aborted:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # watchdog: some participant is stuck outside the
                    # scheduler — release everyone and flag the run
                    self.aborted = True
                    self._blocked.clear()
                    self._cond.notify_all()
                    return
                self._cond.wait(min(remaining, 0.25))

    def _maybe_release(self) -> None:
        # caller holds the condition
        live = self._registered - self._finished
        if self._blocked and set(self._blocked) == live:
            chosen = self._rng.choice(sorted(self._blocked))
            self.history.append(chosen)
            del self._blocked[chosen]
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# Scenario: single-flight coalescing
# ---------------------------------------------------------------------------


def single_flight(
    registry,
    key: tuple,
    token,
    fetch: Callable[[], object],
    schedule: Optional[InterleaveSchedule] = None,
    name: str = "",
):
    """One caller's side of the host-or-follower protocol.

    Returns `(value, was_host)`. The host runs `fetch` and publishes via
    `registry.finish`; followers block on the flight. With a `schedule`,
    arrival and host-fetch are schedule points so the seed controls who
    hosts and who loses the race.
    """
    if schedule is not None:
        schedule.point(name, "arrive")
    flight, is_host = registry.begin_or_attach(key, token)
    if is_host:
        if schedule is not None:
            schedule.point(name, "fetch")
        try:
            value = fetch()
        except BaseException as exc:
            if schedule is not None:
                schedule.finish(name)
            registry.finish(key, None, error=exc)
            raise
        if schedule is not None:
            schedule.finish(name)
        registry.finish(key, value)
        return value, True
    if schedule is not None:
        schedule.finish(name)  # about to wait outside the scheduler
    return flight.wait(timeout=_DEFAULT_TIMEOUT), False


def run_coalescing_scenario(
    fetch: Callable[[], object],
    n_threads: int = 4,
    seed: int = 0,
    registry=None,
    force_coalesce: bool = False,
) -> List[Diagnostic]:
    """Race `n_threads` callers for one flight key; diff against cold fetch.

    `fetch` must be pure (same bytes every call). Returns EII505/EII506
    diagnostics; an empty list means the interleaving was harmless.
    `force_coalesce=True` pins the worst-case ordering — every follower
    attached before the host touches upstream — and then also requires
    exactly one upstream call.
    """
    from repro.cache.inflight import InFlightRegistry

    if registry is None:
        registry = InFlightRegistry()
    oracle = fetch()
    upstream_calls = [0]
    call_guard = threading.Lock()
    all_arrived = threading.Event()

    def counted_fetch():
        with call_guard:
            upstream_calls[0] += 1
        if force_coalesce:
            # the host stalls upstream until every rival has attached —
            # the adversarial ordering where coalescing must carry all
            all_arrived.wait(_DEFAULT_TIMEOUT)
        return fetch()

    schedule = None if force_coalesce else InterleaveSchedule(seed)
    key = ("src", "stmt", seed)
    results: dict = {}
    errors: dict = {}

    def caller(i: int) -> None:
        name = f"caller-{i}"
        try:
            value, _was_host = single_flight(
                registry, key, name, counted_fetch, schedule, name
            )
            results[i] = value
        except BaseException as exc:  # noqa: BLE001 — diffed, not crashed
            errors[i] = exc

    # daemons: a buggy registry can strand followers forever, and a wedged
    # scenario thread must fail the diff, not hang interpreter shutdown
    threads = [
        threading.Thread(target=caller, args=(i,), name=f"caller-{i}", daemon=True)
        for i in range(n_threads)
    ]
    if schedule is not None:
        for thread in threads:
            schedule.register(thread.name)
    for thread in threads:
        thread.start()
    if force_coalesce:
        # wait for all callers to be past begin_or_attach (host included)
        deadline = time.monotonic() + _DEFAULT_TIMEOUT
        while time.monotonic() < deadline:
            if len(registry) == 0 or (
                registry.get(key) is not None
                and len(registry.get(key).attached) == n_threads - 1
            ):
                break
            time.sleep(0.005)
        all_arrived.set()
    for thread in threads:
        thread.join(_DEFAULT_TIMEOUT)

    diagnostics: List[Diagnostic] = []
    origin = f"interleave[seed={seed}]"
    if schedule is not None and schedule.aborted:
        diagnostics.append(
            error(
                "EII505",
                "schedule aborted: a participant wedged outside the "
                "scheduler (possible deadlock under this interleaving)",
                hint=f"release history: {schedule.history}",
                origin=origin,
            )
        )
    for i, exc in sorted(errors.items()):
        diagnostics.append(
            error(
                "EII505",
                f"caller-{i} raised {type(exc).__name__}: {exc} where the "
                "serial oracle succeeds",
                origin=origin,
            )
        )
    for i, value in sorted(results.items()):
        if value != oracle:
            diagnostics.append(
                error(
                    "EII505",
                    f"caller-{i} observed {value!r}, serial oracle says "
                    f"{oracle!r}",
                    hint="a follower was resolved with something other "
                    "than the host's fetched value",
                    origin=origin,
                )
            )
    if force_coalesce and not diagnostics and upstream_calls[0] != 1:
        diagnostics.append(
            error(
                "EII505",
                f"{upstream_calls[0]} upstream fetches for one key with "
                "every caller attached before the host fetched (expected "
                "exactly 1)",
                origin=origin,
            )
        )
    if len(registry) != 0:
        diagnostics.append(
            error(
                "EII506",
                f"{len(registry)} flight(s) still registered after every "
                "caller returned",
                origin=origin,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Scenario: limiter handoff
# ---------------------------------------------------------------------------


def run_limiter_scenario(
    limiter,
    source: str = "src",
    n_threads: int = 16,
    seed: int = 0,
    fail_on: Sequence[int] = (),
    work: Optional[Callable[[int], None]] = None,
) -> List[Diagnostic]:
    """Hammer `limiter.slot(source)` from `n_threads`; audit peak + drain.

    Threads listed in `fail_on` raise inside their slot — the limiter
    must still release. Returns EII506 diagnostics (empty = clean).
    """
    rng = random.Random(seed)
    limit = limiter.limit_for(source)
    start = threading.Barrier(n_threads)

    def worker(i: int) -> None:
        start.wait(_DEFAULT_TIMEOUT)
        time.sleep(rng.random() * 0.002)
        try:
            with limiter.slot(source):
                if work is not None:
                    work(i)
                if i in fail_on:
                    raise RuntimeError(f"injected failure in slot {i}")
        except RuntimeError:
            pass

    # daemons: a leaky limiter leaves later workers blocked in acquire()
    # forever — they must not block interpreter shutdown
    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(_DEFAULT_TIMEOUT)

    diagnostics: List[Diagnostic] = []
    origin = f"interleave[seed={seed}]"
    snapshot = limiter.snapshot()
    peak = snapshot["peak"].get(source, 0)
    if limit is not None and peak > limit:
        diagnostics.append(
            error(
                "EII506",
                f"peak concurrency {peak} exceeded the limit {limit} for "
                f"source {source!r}",
                origin=origin,
            )
        )
    if not limiter.drained():
        leaked = {
            name: count - snapshot["released"].get(name, 0)
            for name, count in snapshot["acquired"].items()
            if count != snapshot["released"].get(name, 0)
        }
        diagnostics.append(
            error(
                "EII506",
                f"slot leak after the run: {leaked}",
                hint="release slots in a finally: block so failures cannot "
                "strand the semaphore",
                origin=origin,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Scenario: gated prefetch pool
# ---------------------------------------------------------------------------


class _PrefetchGate:
    """Blocks pool fetches on arrival; a controller releases them seeded."""

    def __init__(self, seed: int, timeout: float = _DEFAULT_TIMEOUT):
        self._cond = threading.Condition()
        self._rng = random.Random(seed)
        self._waiting: dict = {}  # ticket -> released?
        self._next_ticket = 0
        self._done = False
        self._timeout = timeout
        self.history: List[int] = []

    def arrive_and_wait(self) -> None:
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._waiting[ticket] = False
            self._cond.notify_all()
            deadline = time.monotonic() + self._timeout
            while not self._waiting[ticket] and not self._done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return  # watchdog: never wedge the pool
                self._cond.wait(min(remaining, 0.25))

    def run_controller(self) -> None:
        while True:
            with self._cond:
                while not self._done and not any(
                    not released for released in self._waiting.values()
                ):
                    self._cond.wait(0.25)
                if self._done:
                    return
                # brief grace so concurrent arrivals can join the draw —
                # more arrivals, more adversarial orderings to pick from
                self._cond.wait(0.01)
                pending = [t for t, released in self._waiting.items() if not released]
                if not pending:
                    continue
                chosen = self._rng.choice(sorted(pending))
                self._waiting[chosen] = True
                self.history.append(chosen)
                self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._done = True
            for ticket in self._waiting:
                self._waiting[ticket] = True
            self._cond.notify_all()


def _observation(result) -> tuple:
    rows = sorted(tuple(row) for row in result.relation.rows)
    return rows, tuple(sorted(result.metrics.summary().items())), result.elapsed_seconds


def fuzz_prefetch(
    engine_factory: Callable[[], object],
    sql: str,
    seeds: Sequence[int] = (0, 1, 2, 3),
    timeout: float = _DEFAULT_TIMEOUT,
) -> List[Diagnostic]:
    """Perturb the prefetch pool's fetch order across `seeds`; diff runs.

    `engine_factory` must build a fresh, equivalently-configured engine
    per call (shared state across runs would confound the differential).
    Every perturbed run's rows, metrics summary and simulated elapsed
    time must match the unperturbed oracle run; mismatches are EII505.
    """
    from repro.federation import engine as engine_module

    oracle = _observation(engine_factory().query(sql))
    diagnostics: List[Diagnostic] = []

    for seed in seeds:
        gate = _PrefetchGate(seed, timeout)
        original_fetch = engine_module._FetchRuntime.fetch

        def gated_fetch(self, node, *args, _gate=gate, _orig=original_fetch, **kwargs):
            _gate.arrive_and_wait()
            return _orig(self, node, *args, **kwargs)

        controller = threading.Thread(target=gate.run_controller, daemon=True)
        engine_module._FetchRuntime.fetch = gated_fetch
        controller.start()
        try:
            observed = _observation(engine_factory().query(sql))
        finally:
            engine_module._FetchRuntime.fetch = original_fetch
            gate.close()
            controller.join(timeout)

        origin = f"interleave[seed={seed}]"
        if observed[0] != oracle[0]:
            diagnostics.append(
                error(
                    "EII505",
                    f"rows diverged from the serial oracle under release "
                    f"order {gate.history}",
                    origin=origin,
                )
            )
        if observed[1] != oracle[1]:
            delta = {
                key: (dict(oracle[1]).get(key), dict(observed[1]).get(key))
                for key in set(dict(oracle[1])) | set(dict(observed[1]))
                if dict(oracle[1]).get(key) != dict(observed[1]).get(key)
            }
            diagnostics.append(
                error(
                    "EII505",
                    f"metrics summary diverged from the serial oracle: "
                    f"{delta}",
                    hint="simulated accounting must be schedule-independent",
                    origin=origin,
                )
            )
        if abs(observed[2] - oracle[2]) > 1e-9:
            diagnostics.append(
                error(
                    "EII505",
                    f"simulated elapsed {observed[2]} != oracle {oracle[2]}",
                    origin=origin,
                )
            )
    return diagnostics
