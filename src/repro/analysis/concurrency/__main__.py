"""CLI entry point: `python -m repro.analysis.concurrency [paths...]`.

Runs the static concurrency passes (lock-order cycles EII501, unguarded
shared writes EII502, check-then-act EII503) over python files or source
trees; defaults to `src/repro`. Exit status: 0 clean, 1 when any
error-severity diagnostic (or, with `--strict`, any warning) is found.
The dynamic detectors (race sanitizer, interleaving fuzzer) run from
pytest — see the `--race-sanitize` option and `tests/concurrency_corpus`.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.concurrency import lint_concurrency
from repro.analysis.diagnostics import Severity


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="Static concurrency lint: lock-order cycles, unguarded "
        "shared-state writes, non-atomic check-then-act.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="python files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    args = parser.parse_args(argv)

    report = lint_concurrency(args.paths)
    for diagnostic in report:
        print(diagnostic.render())
    print(report.headline())

    if report.errors:
        return 1
    if args.strict and any(d.severity >= Severity.WARNING for d in report):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
