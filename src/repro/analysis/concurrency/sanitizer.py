"""Dynamic race sanitizer (EII504/EII506/EII507): Eraser with a fence.

`sanitize()` opens a window in which the process's locking and the
engine's concurrent hot paths are instrumented:

* `threading.Lock` / `RLock` / `Semaphore` / `BoundedSemaphore` are
  swapped for tracked wrappers, so the sanitizer always knows which locks
  the current thread holds.
* The cache store, in-flight registry and source limiter have their
  mutating methods wrapped to report shadow-table *accesses* — the
  classic Eraser lockset discipline: every shared variable starts
  `virgin`, becomes `exclusive` to its first thread, then `shared` /
  `shared-modified` once a second thread touches it; from then on its
  candidate lockset is intersected with the locks held at each access,
  and an empty candidate set on a `shared-modified` variable is an
  **EII504** lockset race — reported as a diagnostic carrying both stack
  fingerprints, never a crash.
* Pure lockset checking false-positives on fork/join hand-offs (the
  coordinator reads worker state after `join`, holding nothing). A
  coarse happens-before *fence* fixes that: `Thread.join` and pool
  shutdown bump a global epoch, and a shadow entry last touched in an
  older epoch resets to exclusive-in-the-current-thread — ordering has
  been established, no lock required.
* Every `SourceLimiter` whose slots the window observed must be drained
  by the end of the window, else **EII506** (slot leak); every
  `MetricsCollector` constructed inside the window is owner-bound, and a
  cross-thread mutation reports **EII507** through the violation hook
  instead of raising.

The result is an `AnalysisReport` on the `RaceSanitizer` — the same
currency as the static passes, so the pytest `--race-sanitize` fixture
can simply assert `report.ok`.
"""

from __future__ import annotations

import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, error

# The real factories, captured before any patching can happen. The
# sanitizer's own internal lock must come from here — a tracked internal
# lock would recurse into the sanitizer from inside the sanitizer.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

#: the sanitizer owning the current `sanitize()` window, if any
_ACTIVE: Optional["RaceSanitizer"] = None


def active() -> Optional["RaceSanitizer"]:
    return _ACTIVE


def _fingerprint(skip: int = 3, depth: int = 4) -> str:
    """A compact where-did-this-access-happen stamp for diagnostics."""
    frames = traceback.extract_stack()[: -skip][-depth:]
    return " <- ".join(
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}:{frame.name}"
        for frame in reversed(frames)
    )


# ---------------------------------------------------------------------------
# Tracked lock wrappers
# ---------------------------------------------------------------------------


class _TrackedLock:
    """`threading.Lock` stand-in that reports holds to the sanitizer."""

    _kind = "lock"

    def __init__(self):
        self._inner = _REAL_LOCK()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got and _ACTIVE is not None:
            _ACTIVE._note_acquire(self)
        return got

    def release(self) -> None:
        if _ACTIVE is not None:
            _ACTIVE._note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _TrackedRLock(_TrackedLock):
    """`threading.RLock` stand-in; keeps Condition interoperability."""

    _kind = "rlock"

    def __init__(self):
        self._inner = _REAL_RLOCK()

    # threading.Condition duck-types against these when present; they must
    # exist on the RLock wrapper only (a plain Lock has none and Condition
    # then uses its generic acquire/release fallback).
    def _release_save(self):
        if _ACTIVE is not None:
            _ACTIVE._note_release(self, fully=True)
        return self._inner._release_save()

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        if _ACTIVE is not None:
            _ACTIVE._note_acquire(self)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


class _TrackedSemaphore:
    """Semaphore stand-in; a held slot participates in locksets too.

    Implemented natively on the pre-captured primitives rather than by
    wrapping `threading.Semaphore`: the stdlib classes build their
    internals by resolving `Semaphore`/`Lock` through threading's module
    globals — which the window patches — so constructing a real one
    mid-window would recurse straight back into these wrappers.
    """

    _kind = "semaphore"
    _bounded = False

    def __init__(self, value: int = 1):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self._cond = _REAL_CONDITION(_REAL_LOCK())
        self._value = value
        self._initial_value = value

    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        got = False
        endtime = None
        with self._cond:
            while self._value == 0:
                if not blocking:
                    break
                if timeout is not None:
                    if endtime is None:
                        endtime = time.monotonic() + timeout
                    else:
                        timeout = endtime - time.monotonic()
                        if timeout <= 0:
                            break
                self._cond.wait(timeout)
            else:
                self._value -= 1
                got = True
        if got and _ACTIVE is not None:
            _ACTIVE._note_acquire(self)
        return got

    def release(self, n: int = 1) -> None:
        with self._cond:
            if self._bounded and self._value + n > self._initial_value:
                raise ValueError("Semaphore released too many times")
            self._value += n
            for _ in range(n):
                self._cond.notify()
        if _ACTIVE is not None:
            _ACTIVE._note_release(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _TrackedBoundedSemaphore(_TrackedSemaphore):
    _bounded = True


_TRACKED_TYPES = (_TrackedLock, _TrackedSemaphore)


# ---------------------------------------------------------------------------
# Shadow table (Eraser state machine + epoch fence)
# ---------------------------------------------------------------------------

_VIRGIN, _EXCLUSIVE, _SHARED, _SHARED_MODIFIED = range(4)


@dataclass
class _ShadowEntry:
    state: int = _VIRGIN
    owner: int = 0  # thread ident while exclusive
    lockset: Optional[Set[int]] = None  # candidate locks (ids); None = all
    epoch: int = 0
    first_where: str = ""
    reported: bool = False


@dataclass
class RaceSanitizer:
    """One `sanitize()` window's held-lock map, shadow table and report."""

    report: AnalysisReport = field(default_factory=AnalysisReport)
    epoch: int = 0
    _held: Dict[int, List[int]] = field(default_factory=dict)
    _shadow: Dict[Tuple[int, str], _ShadowEntry] = field(default_factory=dict)
    _labels: Dict[Tuple[int, str], str] = field(default_factory=dict)
    _limiters: List[object] = field(default_factory=list)
    _internal: object = field(default_factory=_REAL_LOCK, repr=False)

    # -- lock bookkeeping (called from the tracked wrappers) ---------------------

    def _note_acquire(self, lock) -> None:
        with self._internal:
            self._held.setdefault(threading.get_ident(), []).append(id(lock))

    def _note_release(self, lock, fully: bool = False) -> None:
        with self._internal:
            held = self._held.get(threading.get_ident(), [])
            target = id(lock)
            for i in range(len(held) - 1, -1, -1):
                if held[i] == target:
                    del held[i]
                    if not fully:
                        break

    def held_locks(self) -> Set[int]:
        with self._internal:
            return set(self._held.get(threading.get_ident(), ()))

    # -- happens-before fence ----------------------------------------------------

    def fence(self) -> None:
        """Establish ordering: join/shutdown happened, old epochs are safe."""
        with self._internal:
            self.epoch += 1

    # -- the Eraser machine ------------------------------------------------------

    def access(self, obj, attr: str, write: bool, where: Optional[str] = None) -> None:
        """Record one shared access to `obj.attr` under the current lockset."""
        key = (id(obj), attr)
        ident = threading.get_ident()
        where = where or _fingerprint()
        with self._internal:
            held = set(self._held.get(ident, ()))
            entry = self._shadow.get(key)
            if entry is None:
                entry = self._shadow[key] = _ShadowEntry()
                self._labels[key] = f"{type(obj).__name__}.{attr}"
            if entry.epoch < self.epoch:
                # a fence separated us from every earlier access: ordering
                # is established, restart the discipline from here
                entry.state = _EXCLUSIVE
                entry.owner = ident
                entry.lockset = None
                entry.epoch = self.epoch
                entry.first_where = where
                return
            entry.epoch = self.epoch
            if entry.state == _VIRGIN:
                entry.state = _EXCLUSIVE
                entry.owner = ident
                entry.first_where = where
                return
            if entry.state == _EXCLUSIVE:
                if entry.owner == ident:
                    return
                entry.state = _SHARED_MODIFIED if write else _SHARED
                entry.lockset = held
            else:
                if write:
                    entry.state = _SHARED_MODIFIED
                entry.lockset = (
                    held if entry.lockset is None else entry.lockset & held
                )
            if entry.state == _SHARED_MODIFIED and not entry.lockset and not entry.reported:
                entry.reported = True
                self.report.add(
                    error(
                        "EII504",
                        f"lockset race on {self._labels[key]}: conflicting "
                        f"accesses from two threads share no lock",
                        hint=(
                            f"first access at [{entry.first_where}]; "
                            f"racing access at [{where}]"
                        ),
                        origin="race-sanitizer",
                    )
                )

    # -- limiter drain audit -----------------------------------------------------

    def watch_limiter(self, limiter) -> None:
        with self._internal:
            if all(existing is not limiter for existing in self._limiters):
                self._limiters.append(limiter)

    def note_owner_violation(self, collector, writer: threading.Thread) -> None:
        owner = getattr(collector, "owner_thread", None)
        self.report.add(
            error(
                "EII507",
                f"MetricsCollector bound to thread "
                f"{getattr(owner, 'name', '?')!r} was mutated from "
                f"{writer.name!r}: single-writer discipline violated",
                hint="give the worker its own collector and merge on the "
                "coordinator after the pool drains",
                origin="race-sanitizer",
            )
        )

    def finalize(self) -> AnalysisReport:
        for limiter in self._limiters:
            if not limiter.drained():
                snapshot = limiter.snapshot()
                leaks = {
                    name: count - snapshot["released"].get(name, 0)
                    for name, count in snapshot["acquired"].items()
                    if count != snapshot["released"].get(name, 0)
                }
                self.report.add(
                    error(
                        "EII506",
                        f"concurrency-slot leak: {leaks} slot(s) acquired "
                        f"but never released",
                        hint="release slots in a finally: block so failures "
                        "cannot strand the semaphore",
                        origin="race-sanitizer",
                    )
                )
        return self.report


# ---------------------------------------------------------------------------
# Instrumentation helpers
# ---------------------------------------------------------------------------


def _guard_is_tracked(obj, guard_attr: Optional[str]) -> bool:
    """Only report accesses whose guard the sanitizer can actually see.

    An object constructed *before* the window holds real (untracked)
    locks; its guarded accesses would look guard-free and false-positive.
    """
    if guard_attr is None:
        return True
    return isinstance(getattr(obj, guard_attr, None), _TRACKED_TYPES)


def instrument_method(cls, method_name: str, attrs, write: bool = True,
                      guard_attr: Optional[str] = None):
    """Patch `cls.method_name` to report shadow accesses; returns an undo.

    Reused by `sanitize()` for the engine's hot paths and by the seeded
    corpus to instrument its intentionally-racy classes.
    """
    original = getattr(cls, method_name)

    @wraps(original)
    def wrapper(self, *args, **kwargs):
        sanitizer = _ACTIVE
        if sanitizer is not None and _guard_is_tracked(self, guard_attr):
            where = _fingerprint(skip=2)
            if guard_attr is not None:
                # record while *holding* the guard (released again before
                # delegating, so non-reentrant guards cannot self-deadlock)
                # — the shadow access must see the lockset the real access
                # runs under, not the wrapper's
                with getattr(self, guard_attr):
                    for attr in attrs:
                        sanitizer.access(self, attr, write, where=where)
            else:
                for attr in attrs:
                    sanitizer.access(self, attr, write, where=where)
        return original(self, *args, **kwargs)

    setattr(cls, method_name, wrapper)

    def undo():
        setattr(cls, method_name, original)

    return undo


def _patch(owner, name: str, replacement):
    original = getattr(owner, name)
    setattr(owner, name, replacement)

    def undo():
        setattr(owner, name, original)

    return undo


def _instrument_engine_hot_paths() -> List:
    """Wrap the known concurrent mutators; returns the undo list."""
    import concurrent.futures

    from repro.cache.inflight import InFlightRegistry
    from repro.cache.store import BoundedStore
    from repro.netsim import metrics as metrics_module
    from repro.sched.limits import SourceLimiter

    undos: List = []

    for method in ("put", "lookup", "invalidate_tag", "invalidate_key", "clear"):
        undos.append(
            instrument_method(
                BoundedStore, method, ("_entries",), guard_attr="_lock"
            )
        )
    for method in ("begin", "attach", "begin_or_attach", "complete"):
        undos.append(
            instrument_method(
                InFlightRegistry, method, ("_flights",), guard_attr="_lock"
            )
        )

    # limiter: register instances for the exit-time drain audit, and shadow
    # the counter dicts (guarded by _guard) like any other hot path. Patched
    # on `slot` (not `_slot`) so subclasses overriding the inner context
    # manager — the corpus's LeakyLimiter — are still watched.
    original_slot = SourceLimiter.slot

    @wraps(original_slot)
    def watched_slot(self, source_name):
        sanitizer = _ACTIVE
        if sanitizer is not None:
            sanitizer.watch_limiter(self)
            if _guard_is_tracked(self, "_guard"):
                with self._guard:
                    sanitizer.access(self, "_in_flight", True, where=_fingerprint(skip=2))
        return original_slot(self, source_name)

    undos.append(_patch(SourceLimiter, "slot", watched_slot))

    # metrics: bind every collector constructed inside the window to its
    # constructing thread, and route violations to EII507 diagnostics
    original_post_init = metrics_module.MetricsCollector.__post_init__

    @wraps(original_post_init)
    def binding_post_init(self):
        original_post_init(self)
        self.bind_owner()

    undos.append(_patch(metrics_module.MetricsCollector, "__post_init__", binding_post_init))
    hooked = metrics_module._OWNER_VIOLATION_HOOK
    metrics_module._OWNER_VIOLATION_HOOK = (
        lambda collector, writer: _ACTIVE is not None
        and _ACTIVE.note_owner_violation(collector, writer)
    )
    undos.append(lambda: setattr(metrics_module, "_OWNER_VIOLATION_HOOK", hooked))

    # happens-before fences on the two join points the engine uses
    original_join = threading.Thread.join

    @wraps(original_join)
    def fencing_join(self, timeout=None):
        original_join(self, timeout)
        if _ACTIVE is not None and not self.is_alive():
            _ACTIVE.fence()

    undos.append(_patch(threading.Thread, "join", fencing_join))

    executor = concurrent.futures.ThreadPoolExecutor
    original_shutdown = executor.shutdown

    @wraps(original_shutdown)
    def fencing_shutdown(self, wait=True, **kwargs):
        original_shutdown(self, wait=wait, **kwargs)
        if _ACTIVE is not None and wait:
            _ACTIVE.fence()

    undos.append(_patch(executor, "shutdown", fencing_shutdown))
    return undos


@contextmanager
def sanitize(instrument: bool = True):
    """Open a race-sanitized window; yields the `RaceSanitizer`.

    Inside the window every newly created `threading` lock is tracked,
    and (with `instrument=True`) the engine's concurrent hot paths report
    shadow accesses. On exit everything is unpatched and the sanitizer's
    `report` holds any EII504/EII506/EII507 findings; nothing raises.
    Windows do not nest.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("sanitize() windows do not nest")
    sanitizer = RaceSanitizer()
    undos: List = [
        _patch(threading, "Lock", _TrackedLock),
        _patch(threading, "RLock", _TrackedRLock),
        _patch(threading, "Semaphore", _TrackedSemaphore),
        _patch(threading, "BoundedSemaphore", _TrackedBoundedSemaphore),
    ]
    if instrument:
        undos.extend(_instrument_engine_hot_paths())
    _ACTIVE = sanitizer
    try:
        yield sanitizer
    finally:
        _ACTIVE = None
        for undo in reversed(undos):
            undo()
        sanitizer.finalize()
