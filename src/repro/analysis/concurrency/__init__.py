"""Concurrency correctness toolkit: the engine audits its own threading.

Three detectors over the `EII5xx` diagnostic family, one currency
(`Diagnostic`/`AnalysisReport`), three very different vantage points:

* **static lint** (`lockorder`, `sharedstate`) — pure-AST passes over
  python sources: lock-order cycles (EII501), unguarded shared writes
  between pool and coordinator code (EII502), non-atomic check-then-act
  on guarded state (EII503);
* **dynamic race sanitizer** (`sanitizer.sanitize`) — Eraser-style
  lockset checking with a happens-before fence over the engine's real
  hot paths: lockset races (EII504), slot leaks (EII506), single-writer
  violations (EII507);
* **deterministic interleaving fuzzer** (`interleave`) — seeded schedule
  perturbation of the prefetch pool and the in-flight registry, diffed
  against a serial oracle: divergence (EII505), leaks (EII506).

`lint_concurrency(paths)` is the workspace entry point the
`python -m repro.analysis.concurrency` CLI wraps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.diagnostics import AnalysisReport

from repro.analysis.concurrency.interleave import (
    InterleaveSchedule,
    fuzz_prefetch,
    run_coalescing_scenario,
    run_limiter_scenario,
    single_flight,
)
from repro.analysis.concurrency.lockorder import build_lock_graph, lint_lock_order
from repro.analysis.concurrency.sanitizer import (
    RaceSanitizer,
    instrument_method,
    sanitize,
)
from repro.analysis.concurrency.sharedstate import lint_shared_state

__all__ = [
    "AnalysisReport",
    "InterleaveSchedule",
    "RaceSanitizer",
    "build_lock_graph",
    "collect_sources",
    "fuzz_prefetch",
    "instrument_method",
    "lint_concurrency",
    "lint_lock_order",
    "lint_shared_state",
    "run_coalescing_scenario",
    "run_limiter_scenario",
    "sanitize",
    "single_flight",
]


def collect_sources(paths: Iterable) -> List[Tuple[str, str]]:
    """Expand files/directories into `(origin, source_text)` pairs."""
    sources: List[Tuple[str, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            files = [path]
        for file in files:
            sources.append((str(file), file.read_text()))
    return sources


def lint_concurrency(paths: Iterable) -> AnalysisReport:
    """Run every static concurrency pass over `paths` (files or dirs)."""
    sources = collect_sources(paths)
    report = AnalysisReport()
    report.extend(lint_lock_order(sources))
    report.extend(lint_shared_state(sources))
    return report
