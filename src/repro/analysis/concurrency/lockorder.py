"""Lock-acquisition-order lint (EII501): find potential deadlocks statically.

The pass walks a python source tree (no imports — pure `ast`) and builds a
*lock-acquisition-order graph*: a node per lock object the code declares
(`self._lock = threading.Lock()`, `self._guard`, a semaphore handed around
as a parameter, …) and an edge ``A -> B`` whenever the code acquires ``B``
while already holding ``A`` — either directly (a nested ``with``) or
through an intra-class/intra-module call chain (``put`` holds the lock and
calls ``purge_expired`` which re-acquires it).

A cycle in that graph is a potential deadlock: two threads entering the
cycle from different edges can each hold one lock and wait forever on the
other. Self-edges are reported only for locks the pass *knows* are
non-reentrant (`threading.Lock` / `BoundedSemaphore` assignments); an
RLock re-acquired by a callee is the reentrancy idiom, not a bug.

Lock identity is lexical, ``ClassName.attr`` for ``self.<attr>`` and
``ClassName.<var>`` for lock-named locals/parameters — deliberately
object-insensitive: ordering violations between *instances* of the same
class are one lint finding, not zero.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, SourceSpan, error

#: identifiers treated as lock objects when used in `with X:` / `X.acquire()`
_LOCKISH = re.compile(r"lock|guard|mutex|sema|latch", re.IGNORECASE)

#: threading constructors whose result is a *non-reentrant* exclusion object
_NON_REENTRANT = {"Lock", "BoundedSemaphore", "Semaphore"}
_REENTRANT = {"RLock"}


def _lock_name(node: ast.AST, class_name: str) -> Optional[str]:
    """The graph-node name for a lock expression, or None when not a lock."""
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Name) and value.id == "self":
            if _LOCKISH.search(node.attr):
                return f"{class_name or '<module>'}.{node.attr}"
        return None
    if isinstance(node, ast.Name) and _LOCKISH.search(node.id):
        return f"{class_name or '<module>'}.{node.id}"
    return None


@dataclass
class _Acquisition:
    lock: str
    line: int
    col: int
    #: locks already held (lexically) at this acquisition site
    held: Tuple[str, ...]


@dataclass
class _FunctionInfo:
    qualname: str
    class_name: str
    acquisitions: List[_Acquisition] = field(default_factory=list)
    #: (callee qualname guess, held locks at the call site, line, col)
    calls: List[Tuple[str, Tuple[str, ...], int, int]] = field(default_factory=list)


@dataclass
class LockEdge:
    """One observed ordering: `held` was held while `acquired` was taken."""

    held: str
    acquired: str
    origin: str
    line: int
    col: int
    via: str  # the function whose body produced the edge


class _ModuleScanner(ast.NodeVisitor):
    """Collect per-function acquisition and call info for one module."""

    def __init__(self, origin: str):
        self.origin = origin
        self.functions: Dict[str, _FunctionInfo] = {}
        self.lock_kinds: Dict[str, str] = {}  # lock name -> "lock" | "rlock"
        self._class_stack: List[str] = []
        self._func_stack: List[_FunctionInfo] = []
        self._held_stack: List[str] = []

    # -- scope tracking ----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _class_name(self) -> str:
        return self._class_stack[-1] if self._class_stack else "<module>"

    def _enter_function(self, node) -> None:
        parent = self._func_stack[-1].qualname + "." if self._func_stack else (
            self._class_name() + "." if self._class_stack else ""
        )
        info = _FunctionInfo(parent + node.name, self._class_name())
        self.functions[info.qualname] = info
        self._func_stack.append(info)
        # lexical lock holds do not cross a function boundary
        saved, self._held_stack = self._held_stack, []
        for child in node.body:
            self.visit(child)
        self._held_stack = saved
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # -- lock kinds --------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._constructed_kind(node.value)
        if kind is not None:
            for target in node.targets:
                name = _lock_name(target, self._class_name())
                if name is not None:
                    self.lock_kinds[name] = kind
        self.generic_visit(node)

    @staticmethod
    def _constructed_kind(value: ast.AST) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        ctor = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if ctor in _NON_REENTRANT:
            return "lock"
        if ctor in _REENTRANT:
            return "rlock"
        return None

    # -- acquisitions ------------------------------------------------------------

    def _record_acquire(self, lock: str, node: ast.AST) -> None:
        if self._func_stack:
            self._func_stack[-1].acquisitions.append(
                _Acquisition(lock, node.lineno, node.col_offset, tuple(self._held_stack))
            )

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            target = expr.func if isinstance(expr, ast.Call) else expr
            name = _lock_name(target, self._class_name())
            if name is not None and not isinstance(expr, ast.Call):
                # `with self._lock:` — a Call form (`with self.locked():`)
                # is a factory, not the lock object itself
                self._record_acquire(name, item.context_expr)
                self._held_stack.append(name)
                acquired.append(name)
            else:
                self.visit(expr)
        for child in node.body:
            self.visit(child)
        for name in reversed(acquired):
            # remove the most recent matching hold; bare `.acquire()` calls
            # made inside the body stay held (conservative, no release
            # tracking) so a positional pop would evict the wrong lock
            for i in range(len(self._held_stack) - 1, -1, -1):
                if self._held_stack[i] == name:
                    del self._held_stack[i]
                    break

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            name = _lock_name(func.value, self._class_name())
            if name is not None:
                # a bare X.acquire(): held (conservatively) for the rest of
                # the enclosing function — release tracking is out of scope
                self._record_acquire(name, node)
                self._held_stack.append(name)
        # intra-class / intra-module call resolution for the closure pass
        if self._func_stack:
            callee = self._callee_guess(func)
            if callee is not None:
                self._func_stack[-1].calls.append(
                    (callee, tuple(self._held_stack), node.lineno, node.col_offset)
                )
        self.generic_visit(node)

    def _callee_guess(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return f"{self._class_name()}.{func.attr}"
            return None
        if isinstance(func, ast.Name):
            return func.id  # module-level function (resolved if scanned)
        return None


@dataclass
class LockOrderGraph:
    """The whole-workspace acquisition graph plus lock reentrancy info."""

    edges: List[LockEdge] = field(default_factory=list)
    lock_kinds: Dict[str, str] = field(default_factory=dict)

    def adjacency(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for edge in self.edges:
            out.setdefault(edge.held, set()).add(edge.acquired)
        return out


def build_lock_graph(sources: List[Tuple[str, str]]) -> LockOrderGraph:
    """Scan `(origin, source_text)` pairs into one acquisition-order graph."""
    graph = LockOrderGraph()
    all_functions: Dict[str, _FunctionInfo] = {}
    per_module: List[Tuple[str, _ModuleScanner]] = []
    for origin, text in sources:
        try:
            tree = ast.parse(text)
        except SyntaxError:
            continue  # not this pass's finding
        scanner = _ModuleScanner(origin)
        scanner.visit(tree)
        graph.lock_kinds.update(scanner.lock_kinds)
        all_functions.update(scanner.functions)
        per_module.append((origin, scanner))

    # Fixpoint: the set of locks each function may acquire, transitively
    # through resolvable calls (bounded by the call-graph depth).
    may_acquire: Dict[str, Set[str]] = {
        name: {a.lock for a in info.acquisitions}
        for name, info in all_functions.items()
    }
    changed = True
    while changed:
        changed = False
        for name, info in all_functions.items():
            for callee, _held, _line, _col in info.calls:
                target = may_acquire.get(callee)
                if target and not target <= may_acquire[name]:
                    may_acquire[name] |= target
                    changed = True

    for origin, scanner in per_module:
        for info in scanner.functions.values():
            for acq in info.acquisitions:
                for held in acq.held:
                    if held != acq.lock or graph.lock_kinds.get(acq.lock) == "lock":
                        graph.edges.append(
                            LockEdge(held, acq.lock, origin, acq.line, acq.col, info.qualname)
                        )
            for callee, held_locks, line, col in info.calls:
                for inner in sorted(may_acquire.get(callee, ())):
                    for held in held_locks:
                        if inner == held and graph.lock_kinds.get(inner) != "lock":
                            continue  # reentrant (or unknown) re-acquisition
                        graph.edges.append(
                            LockEdge(held, inner, origin, line, col, info.qualname)
                        )
    return graph


def _cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with ≥2 nodes, plus self-loops."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []
    nodes = sorted(set(adjacency) | {m for vs in adjacency.values() for m in vs})

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adjacency.get(v, ())):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component: List[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1 or v in adjacency.get(v, ()):
                out.append(sorted(component))

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return out


def lint_lock_order(sources: List[Tuple[str, str]]) -> List[Diagnostic]:
    """EII501 diagnostics for every lock-order cycle across `sources`."""
    graph = build_lock_graph(sources)
    adjacency = graph.adjacency()
    diagnostics: List[Diagnostic] = []
    for component in _cycles(adjacency):
        members = set(component)
        witnesses = [
            e for e in graph.edges if e.held in members and e.acquired in members
        ]
        witness = min(witnesses, key=lambda e: (e.origin, e.line, e.col))
        if len(component) == 1:
            message = (
                f"non-reentrant lock {component[0]} is re-acquired while "
                f"already held (via {witness.via})"
            )
            hint = "use an RLock, or restructure so the callee never re-locks"
        else:
            ordering = " -> ".join(component + [component[0]])
            message = f"lock-order cycle {ordering} (potential deadlock)"
            hint = (
                "impose one global acquisition order; witnesses: "
                + "; ".join(
                    f"{e.held} then {e.acquired} at {e.origin}:{e.line}"
                    for e in witnesses[:4]
                )
            )
        diagnostics.append(
            error(
                "EII501",
                message,
                span=SourceSpan(0, 1, witness.line, witness.col + 1),
                hint=hint,
                origin=witness.origin,
            )
        )
    return diagnostics
