"""Shared-state lint (EII502/EII503): cross-thread mutation discipline.

Two sibling passes over each class of a module, again pure `ast`:

**EII502 — unguarded shared-state write.** The pass first finds the
*threaded* functions of a class: anything handed to a pool
(``pool.submit(fn, ...)``, ``executor.submit(self.work)``) or a thread
(``threading.Thread(target=fn)``), plus everything those functions call
through ``self.`` within the class. An instance attribute that is written
inside a threaded function *and* written in an ordinary (coordinator)
method — with no common lock guarding both writes — is flagged: the two
writers race. ``__init__`` writes are construction, not sharing, and are
exempt.

**EII503 — non-atomic check-then-act.** For attributes that the class
does guard somewhere (any access under a ``with <lock>:``), an ``if``
whose *test* reads the attribute (membership, ``.get``, truthiness,
subscript) outside any lock while the taken branch *writes* it is the
classic dropped-atomicity bug: the world can change between the check and
the act, even when the act itself re-takes the lock.

Resolution is intra-class by design (a ``self.x()`` call chain); the
passes trade recall for a zero-false-positive contract on disciplined
code — `python -m repro.analysis.concurrency --strict` must exit 0 on
this repository.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, SourceSpan, error, warning

from repro.analysis.concurrency.lockorder import _lock_name

#: method calls that mutate their receiver container in place
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "move_to_end", "appendleft",
}


@dataclass
class _WriteSite:
    attr: str
    function: str
    held: Tuple[str, ...]
    line: int
    col: int


@dataclass
class _ClassInfo:
    name: str
    origin: str
    lineno: int
    writes: List[_WriteSite] = field(default_factory=list)
    #: attr -> lines where it is accessed under at least one lock
    guarded_attrs: Set[str] = field(default_factory=set)
    #: functions submitted to pools/threads (entry points of worker code)
    threaded_entries: Set[str] = field(default_factory=set)
    #: intra-class call graph: function -> called self-methods
    calls: Dict[str, Set[str]] = field(default_factory=dict)
    #: check-then-act findings: (attr, function, line, col)
    check_then_act: List[Tuple[str, str, int, int]] = field(default_factory=list)

    def threaded_closure(self) -> Set[str]:
        threaded = set(self.threaded_entries)
        frontier = list(threaded)
        while frontier:
            current = frontier.pop()
            for callee in self.calls.get(current, ()):
                if callee not in threaded:
                    threaded.add(callee)
                    frontier.append(callee)
        return threaded


def _self_attr(node: ast.AST) -> Optional[str]:
    """`self.X` -> "X" (also through one subscript: `self.X[k]` -> "X")."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _attr_reads_in(test: ast.AST) -> Set[str]:
    """Attributes of `self` the expression reads (membership/get/truth)."""
    found: Set[str] = set()
    for node in ast.walk(test):
        attr = _self_attr(node)
        if attr is not None:
            found.add(attr)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = _self_attr(node.func.value)
            if receiver is not None and node.func.attr in ("get", "keys", "values"):
                found.add(receiver)
    return found


class _ClassScanner(ast.NodeVisitor):
    """One class body: writes, guards, threaded entries, check-then-act."""

    def __init__(self, info: _ClassInfo, class_name: str):
        self.info = info
        self.class_name = class_name
        self._func_stack: List[str] = []
        self._held_stack: List[str] = []

    # -- scope -------------------------------------------------------------------

    def _enter_function(self, node) -> None:
        parent = self._func_stack[-1] + "." if self._func_stack else ""
        self._func_stack.append(parent + node.name)
        saved, self._held_stack = self._held_stack, []
        for child in node.body:
            self.visit(child)
        self._held_stack = saved
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes get their own scanner

    def _function(self) -> str:
        return self._func_stack[-1] if self._func_stack else "<class body>"

    # -- locks -------------------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            name = (
                _lock_name(expr, self.class_name)
                if not isinstance(expr, ast.Call)
                else None
            )
            if name is not None:
                self._held_stack.append(name)
                acquired.append(name)
            else:
                self.visit(expr)
        for child in node.body:
            self.visit(child)
        for name in reversed(acquired):
            for i in range(len(self._held_stack) - 1, -1, -1):
                if self._held_stack[i] == name:
                    del self._held_stack[i]
                    break

    # -- writes ------------------------------------------------------------------

    def _record_write(self, attr: str, node: ast.AST) -> None:
        self.info.writes.append(
            _WriteSite(
                attr,
                self._function(),
                tuple(self._held_stack),
                node.lineno,
                node.col_offset,
            )
        )
        if self._held_stack:
            self.info.guarded_attrs.add(attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record_write(attr, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self._record_write(attr, node)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record_write(attr, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _self_attr(func.value)
            if receiver is not None and func.attr in _MUTATORS:
                self._record_write(receiver, node)
            if receiver is not None and self._held_stack:
                self.info.guarded_attrs.add(receiver)
            # threaded entry points: pool.submit(fn, ...) / Thread(target=fn)
            if func.attr == "submit" and node.args:
                entry = self._entry_name(node.args[0])
                if entry is not None:
                    self.info.threaded_entries.add(entry)
            # intra-class call graph
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.info.calls.setdefault(self._function(), set()).add(func.attr)
        if isinstance(func, ast.Name) and func.id == "Thread" or (
            isinstance(func, ast.Attribute) and func.attr == "Thread"
        ):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    entry = self._entry_name(keyword.value)
                    if entry is not None:
                        self.info.threaded_entries.add(entry)
        self.generic_visit(node)

    def _entry_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            # a local function defined inside the submitting method
            return f"{self._function()}.{node.id}"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    # -- check-then-act ----------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if not self._held_stack:
            checked = _attr_reads_in(node.test)
            if checked:
                written = {
                    attr
                    for child in node.body
                    for stmt in ast.walk(child)
                    for attr in self._written_attrs(stmt)
                }
                for attr in sorted(checked & written):
                    self.info.check_then_act.append(
                        (attr, self._function(), node.lineno, node.col_offset)
                    )
        self.visit(node.test)
        for child in node.body:
            self.visit(child)
        for child in node.orelse:
            self.visit(child)

    @staticmethod
    def _written_attrs(node: ast.AST) -> Set[str]:
        out: Set[str] = set()
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and isinstance(target, ast.Subscript):
                    out.add(attr)  # rebinding self.x wholesale is not CAS-like
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is not None:
                out.add(attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    out.add(attr)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = _self_attr(node.func.value)
            if receiver is not None and node.func.attr in _MUTATORS:
                out.add(receiver)
        return out


def _scan_module(origin: str, text: str) -> List[_ClassInfo]:
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return []
    out: List[_ClassInfo] = []

    def walk_classes(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                info = _ClassInfo(child.name, origin, child.lineno)
                scanner = _ClassScanner(info, child.name)
                for stmt in child.body:
                    scanner.visit(stmt)
                out.append(info)
                walk_classes(child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_classes(child)

    walk_classes(tree)
    return out


def lint_shared_state(sources: List[Tuple[str, str]]) -> List[Diagnostic]:
    """EII502/EII503 diagnostics over `(origin, source_text)` pairs."""
    diagnostics: List[Diagnostic] = []
    for origin, text in sources:
        for info in _scan_module(origin, text):
            diagnostics.extend(_lint_class(info))
    return diagnostics


def _lint_class(info: _ClassInfo) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    threaded = info.threaded_closure()
    if threaded:
        by_attr: Dict[str, List[_WriteSite]] = {}
        for site in info.writes:
            if site.function == "__init__":
                continue
            by_attr.setdefault(site.attr, []).append(site)
        for attr in sorted(by_attr):
            sites = by_attr[attr]
            worker_sites = [
                s for s in sites
                if s.function in threaded
                or any(s.function.startswith(t + ".") for t in threaded)
            ]
            coordinator_sites = [s for s in sites if s not in worker_sites]
            for worker in worker_sites:
                for coordinator in coordinator_sites:
                    if set(worker.held) & set(coordinator.held):
                        continue
                    out.append(
                        error(
                            "EII502",
                            f"{info.name}.{attr} is written by pool/thread "
                            f"code ({worker.function}, line {worker.line}) and "
                            f"by the coordinator ({coordinator.function}, line "
                            f"{coordinator.line}) with no common lock",
                            span=SourceSpan(0, 1, worker.line, worker.col + 1),
                            hint="guard both writes with one lock, or funnel "
                            "worker results through a merge on the "
                            "coordinator thread",
                            origin=info.origin,
                        )
                    )
                    break  # one finding per attr per worker site
    for attr, function, line, col in info.check_then_act:
        if attr not in info.guarded_attrs:
            continue  # never locked anywhere: single-threaded state
        out.append(
            warning(
                "EII503",
                f"check-then-act on {info.name}.{attr} in {function}: the "
                f"test runs outside the lock that elsewhere guards it, so "
                f"the state can change before the branch body acts",
                span=SourceSpan(0, 1, line, col + 1),
                hint="hold the guarding lock across the test and the "
                "mutation (one `with` block)",
                origin=info.origin,
            )
        )
    return out
