"""Workspace linting: analyze a directory of query and mapping files.

A *workspace* is a directory tree holding:

- `*.sql`  — queries, `;`-separated, analyzed against the catalog;
- `*.gav`  — GAV view definitions, one `name = SELECT ...` per line
  (`#` comments); linted with `lint_gav` and semantically checked;
- `*.lav`  — LAV source descriptions as Datalog rules, one per line;
  lines starting with `query ` declare workload queries used for
  dead-view detection; linted with `lint_lav`.

Every diagnostic is stamped with the file it came from (relative path as
`origin`), so `python -m repro.analysis <dir>` and the shell's `\\lint`
render actionable, per-file findings.
"""

from __future__ import annotations

import os
from typing import List

from repro.analysis.analyzer import QueryAnalyzer
from repro.analysis.diagnostics import AnalysisReport, error
from repro.analysis.mappings import lint_gav, lint_lav
from repro.mediator.cq import CQSyntaxError, ConjunctiveQuery, parse_cq
from repro.mediator.lav import LavMapping

_EXTENSIONS = (".sql", ".gav", ".lav")


def workspace_files(root: str) -> List[str]:
    """All lintable files under `root` (or `root` itself), sorted."""
    if os.path.isfile(root):
        return [root]
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(_EXTENSIONS):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def lint_workspace(root: str, catalog, resolver=None) -> AnalysisReport:
    """Lint every query/mapping file under `root` against `catalog`."""
    report = AnalysisReport()
    files = workspace_files(root)
    if not files:
        return report

    gav_schema = None
    lav_mappings: List[LavMapping] = []
    lav_workload: List[ConjunctiveQuery] = []
    lav_origin: dict = {}

    # Mappings first: queries may reference GAV views defined in the
    # workspace, so the resolver must know them before the SQL pass runs.
    for path in files:
        origin = os.path.relpath(path, root if os.path.isdir(root) else os.path.dirname(root) or ".")
        if path.endswith(".gav"):
            gav_schema = gav_schema or _new_schema()
            report.extend(_load_gav(path, origin, gav_schema))
        elif path.endswith(".lav"):
            report.extend(
                _load_lav(path, origin, lav_mappings, lav_workload, lav_origin)
            )

    if gav_schema is not None:
        from repro.mediator.gav import GavMediator

        resolver = GavMediator(gav_schema, resolver or catalog)
        report.extend(lint_gav(gav_schema, catalog))
    if lav_mappings:
        for diagnostic in lint_lav(lav_mappings, lav_workload):
            # per-view findings carry the view name; point at the file instead
            report.add(
                diagnostic.with_origin(
                    lav_origin.get(diagnostic.origin, diagnostic.origin)
                )
            )

    analyzer = QueryAnalyzer(resolver=resolver or catalog, catalog=catalog)
    for path in files:
        if not path.endswith(".sql"):
            continue
        origin = os.path.relpath(path, root if os.path.isdir(root) else os.path.dirname(path) or ".")
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        for statement_text in _split_statements(content):
            found = analyzer.analyze(statement_text)
            report.extend(d.with_origin(origin) for d in found)
    return report


def _new_schema():
    from repro.mediator.gav import MediatedSchema

    return MediatedSchema()


def _split_statements(content: str) -> List[str]:
    """Split file content on `;`, comment-aware.

    `--` comments are stripped line-wise first so a `;` inside a comment
    does not cut a statement in half. (The lexer would also skip comments,
    but the split itself must not see them.)
    """
    stripped_lines = []
    for line in content.splitlines():
        comment = line.find("--")
        stripped_lines.append(line if comment < 0 else line[:comment])
    out: List[str] = []
    for piece in "\n".join(stripped_lines).split(";"):
        if piece.strip():
            out.append(piece.strip())
    return out


def _load_gav(path: str, origin: str, schema) -> List:
    """Parse `name = SELECT ...` lines into `schema`; report bad lines."""
    diags: List = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "=" not in stripped:
            diags.append(
                error(
                    "EII100",
                    f"line {number}: expected `name = SELECT ...`",
                    origin=origin,
                    hint="one view definition per line",
                )
            )
            continue
        name, definition = stripped.split("=", 1)
        try:
            schema.define(name.strip(), definition.strip())
        except Exception as exc:  # noqa: BLE001 - any parse failure is EII100
            diags.append(
                error(
                    "EII100",
                    f"line {number}: view {name.strip()!r} does not parse: {exc}",
                    origin=origin,
                    hint="the right-hand side must be a SELECT statement",
                )
            )
    return diags


def _load_lav(
    path: str,
    origin: str,
    mappings: List[LavMapping],
    workload: List[ConjunctiveQuery],
    name_origin: dict,
) -> List:
    """Parse Datalog rules (and `query `-prefixed workload rules)."""
    diags: List = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        is_query = stripped.lower().startswith("query ")
        rule_text = stripped[6:] if is_query else stripped
        try:
            rule = parse_cq(rule_text)
        except CQSyntaxError as exc:
            diags.append(
                error(
                    "EII100",
                    f"line {number}: rule does not parse: {exc}",
                    origin=origin,
                    hint="expected `head(Vars) :- body(...)` Datalog syntax",
                )
            )
            continue
        if is_query:
            workload.append(rule)
        else:
            mappings.append(LavMapping(rule))
            name_origin[rule.name] = origin
    return diags
