"""GAV/LAV mapping lint (EII3xx diagnostics).

GAV side: every view in a `MediatedSchema` is checked for dangling table
references, definition cycles and computed columns that make updates
untranslatable (the view-update problem), then its body is semantically
analyzed like any query. LAV side: rules are checked for safety, pairwise
redundancy (mutual containment via the canonical database), conceptual
attributes no view ever exposes, and — given a workload — views MiniCon can
never use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.mediator.cq import ConjunctiveQuery, Var, is_contained_in
from repro.mediator.lav import LavMapping, minicon_rewritings
from repro.sql.ast import ColumnRef, Select, Star


# ---------------------------------------------------------------------------
# GAV
# ---------------------------------------------------------------------------


def lint_gav(schema, catalog) -> List[Diagnostic]:
    """Lint every view of a `MediatedSchema` against a base resolver.

    `catalog` is anything with `resolve_table` (typically a
    `FederationCatalog`) resolving the *non*-virtual tables.
    """
    diags: List[Diagnostic] = []
    views: Dict[str, Select] = {
        name: schema.definition(name) for name in schema.names()
    }

    cyclic = _find_cycles(views)
    for name in sorted(cyclic):
        diags.append(
            error(
                "EII305",
                f"cyclic view definition involving {name!r}",
                origin=name,
                hint="break the cycle; views must unfold to base tables",
            )
        )

    for name, view in views.items():
        for ref in view.tables():
            key = ref.name.lower()
            if key in views or _resolves(catalog, ref.name):
                continue
            diags.append(
                error(
                    "EII301",
                    f"view {name!r} references unknown table {ref.name!r}",
                    origin=name,
                    hint="register the source table or define the view it names",
                )
            )
        for item in view.items:
            if isinstance(item.expr, (ColumnRef, Star)):
                continue
            diags.append(
                warning(
                    "EII302",
                    f"view {name!r} column {item.output_name!r} is computed "
                    f"({item.expr}); updates through it cannot be translated "
                    "to the sources",
                    origin=name,
                    hint="expose the underlying columns for writable views",
                )
            )

    if not cyclic:
        diags.extend(_semantic_check_views(schema, catalog, views))
    return diags


def _semantic_check_views(schema, catalog, views: Dict[str, Select]) -> List[Diagnostic]:
    """Run the EII1xx semantic pass over each view body.

    The GAV mediator itself is the resolver, so views over views check out
    and column-level defects inside definitions surface with the view name
    as the diagnostic origin.
    """
    from repro.analysis.semantic import analyze_statement
    from repro.mediator.gav import GavMediator

    mediator = GavMediator(schema, catalog)
    diags: List[Diagnostic] = []
    for name, view in views.items():
        try:
            found = analyze_statement(view, mediator)
        except Exception:  # a broken sibling view can poison resolution
            continue
        diags.extend(d.with_origin(name) for d in found)
    return diags


def _resolves(catalog, name: str) -> bool:
    try:
        catalog.resolve_table(name)
    except Exception:
        return False
    return True


def _find_cycles(views: Dict[str, Select]) -> Set[str]:
    """View names participating in (or depending on) a definition cycle."""
    graph: Dict[str, List[str]] = {}
    for name, view in views.items():
        graph[name] = [
            ref.name.lower() for ref in view.tables() if ref.name.lower() in views
        ]
    cyclic: Set[str] = set()
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(node: str, stack: List[str]) -> None:
        if state.get(node) == 1:
            return
        if state.get(node) == 0:
            cyclic.update(stack[stack.index(node):])
            return
        state[node] = 0
        stack.append(node)
        for successor in graph.get(node, ()):  # pragma: no branch
            visit(successor, stack)
        stack.pop()
        state[node] = 1

    for name in views:
        visit(name, [])
    return cyclic


# ---------------------------------------------------------------------------
# LAV
# ---------------------------------------------------------------------------


def lint_lav(
    mappings: Sequence[LavMapping],
    workload: Iterable[ConjunctiveQuery] = (),
) -> List[Diagnostic]:
    """Lint LAV source descriptions, optionally against a query workload."""
    diags: List[Diagnostic] = []
    mappings = list(mappings)

    for mapping in mappings:
        if not mapping.view.is_safe():
            exposed = {var.name for var in mapping.view.head_vars()}
            body_vars = {
                var.name
                for atom in mapping.view.body
                for var in atom.variables()
            }
            missing = sorted(exposed - body_vars)
            diags.append(
                error(
                    "EII306",
                    f"view {mapping.name!r} is unsafe: head variable(s) "
                    f"{', '.join(missing)} never occur in the body",
                    origin=mapping.name,
                    hint="every head variable must be range-restricted",
                )
            )

    safe = [m for m in mappings if m.view.is_safe()]
    diags.extend(_redundant_views(safe))
    diags.extend(_unexposed_attributes(safe))
    if workload:
        diags.extend(_dead_views(safe, workload))
    return diags


def _redundant_views(mappings: Sequence[LavMapping]) -> List[Diagnostic]:
    """EII304: pairs of views equivalent under CQ containment."""
    diags: List[Diagnostic] = []
    for i, first in enumerate(mappings):
        for second in mappings[i + 1:]:
            if len(first.view.head) != len(second.view.head):
                continue
            if is_contained_in(first.view, second.view) and is_contained_in(
                second.view, first.view
            ):
                diags.append(
                    warning(
                        "EII304",
                        f"views {first.name!r} and {second.name!r} are "
                        "equivalent: one of them is redundant",
                        origin=second.name,
                        hint="drop one view, or differentiate their bodies",
                    )
                )
    return diags


def _unexposed_attributes(mappings: Sequence[LavMapping]) -> List[Diagnostic]:
    """EII307: conceptual attribute positions no view head ever exposes."""
    #: (predicate, position) -> exposed by at least one view head?
    seen: Dict[Tuple[str, int], bool] = {}
    for mapping in mappings:
        head_vars = set(mapping.view.head_vars())
        for atom in mapping.view.body:
            for position, term in enumerate(atom.terms):
                key = (atom.predicate, position)
                exposed = isinstance(term, Var) and term in head_vars
                seen[key] = seen.get(key, False) or exposed
    diags: List[Diagnostic] = []
    for (predicate, position), exposed in sorted(seen.items()):
        if exposed:
            continue
        diags.append(
            warning(
                "EII307",
                f"conceptual attribute {predicate}[{position}] is covered by "
                "the views but never exposed in any view head: queries "
                "projecting it have no rewriting",
                hint=f"add the attribute to some view head over {predicate!r}",
            )
        )
    return diags


def _dead_views(
    mappings: Sequence[LavMapping], workload: Iterable[ConjunctiveQuery]
) -> List[Diagnostic]:
    """EII303: views MiniCon never uses in any rewriting of the workload."""
    used: Set[str] = set()
    for query in workload:
        try:
            rewritings = minicon_rewritings(query, list(mappings))
        except Exception:
            continue
        for rewriting in rewritings:
            used.update(atom.predicate for atom in rewriting.body)
    diags: List[Diagnostic] = []
    for mapping in mappings:
        if mapping.name in used:
            continue
        diags.append(
            warning(
                "EII303",
                f"view {mapping.name!r} is dead: MiniCon uses it in no "
                "rewriting of the workload",
                origin=mapping.name,
                hint="broaden the view or drop it; it answers no known query",
            )
        )
    return diags
