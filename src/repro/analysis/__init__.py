"""Static analysis & diagnostics for the EII stack.

Pass-based analysis producing typed diagnostics with stable codes:

- EII1xx  SQL semantic analysis (`semantic.analyze_statement`)
- EII2xx  capability / binding-pattern feasibility (`capability.analyze_capabilities`)
- EII3xx  GAV/LAV mapping lint (`mappings.lint_gav` / `mappings.lint_lav`)
- EII4xx  plan invariant verification (`invariants.verify_plan`)

`QueryAnalyzer` is the facade engines use under `validate=True`;
`lint_workspace` powers `python -m repro.analysis` and the shell's `\\lint`.
"""

from repro.analysis.analyzer import QueryAnalyzer
from repro.analysis.capability import analyze_capabilities
from repro.analysis.diagnostics import (
    CODES,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
    SourceSpan,
    error,
    info,
    span_at,
    span_of,
    warning,
)
from repro.analysis.invariants import verify_plan
from repro.analysis.mappings import lint_gav, lint_lav
from repro.analysis.semantic import analyze_statement
from repro.analysis.workspace import lint_workspace, workspace_files

__all__ = [
    "CODES",
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "QueryAnalyzer",
    "Severity",
    "SourceSpan",
    "analyze_capabilities",
    "analyze_statement",
    "error",
    "info",
    "lint_gav",
    "lint_lav",
    "lint_workspace",
    "span_at",
    "span_of",
    "verify_plan",
    "warning",
    "workspace_files",
]
