"""QueryAnalyzer: the one-stop facade over all analysis passes.

`analyze()` runs syntax (EII100), semantics (EII1xx) and — when a
federation catalog is available — capability feasibility (EII2xx) over a
query. `verify()` runs the EII4xx invariant checks over a planned
`FederatedPlan`. Engines call both around planning when constructed with
`validate=True`; the CLI and the shell's `\\lint` call `analyze` directly.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.capability import analyze_capabilities
from repro.analysis.diagnostics import AnalysisReport, error, span_at
from repro.analysis.invariants import verify_plan
from repro.analysis.semantic import analyze_statement
from repro.common.errors import ParseError
from repro.sql.ast import Select, UnionSelect
from repro.sql.parser import parse


class QueryAnalyzer:
    """Analyzes queries against a resolver and (optionally) a catalog.

    `resolver` is anything with `resolve_table(name) -> RelSchema`; when
    omitted it defaults to `catalog`. `catalog` (a `FederationCatalog`)
    additionally enables the EII2xx capability checks.
    """

    def __init__(self, resolver=None, catalog=None):
        if resolver is None:
            resolver = catalog
        if resolver is None:
            raise ValueError("QueryAnalyzer needs a resolver or a catalog")
        self.resolver = resolver
        self.catalog = catalog

    def analyze(
        self, query: Union[str, Select, UnionSelect], text: Optional[str] = None
    ) -> AnalysisReport:
        """Pre-planning analysis of one statement (never raises)."""
        report = AnalysisReport()
        statement = query
        if isinstance(query, str):
            text = query
            try:
                statement = parse(query)
            except ParseError as exc:
                span = (
                    span_at(query, exc.position)
                    if exc.position is not None
                    else None
                )
                report.add(
                    error(
                        "EII100",
                        str(exc),
                        span=span,
                        hint="fix the syntax; nothing else was checked",
                    )
                )
                return report
        report.extend(analyze_statement(statement, self.resolver, text))
        if self.catalog is not None and isinstance(statement, (Select, UnionSelect)):
            report.extend(analyze_capabilities(statement, self.catalog, text))
        return report

    def verify(self, plan) -> AnalysisReport:
        """Post-planning invariant verification of a `FederatedPlan`."""
        report = AnalysisReport()
        report.extend(verify_plan(plan))
        return report
