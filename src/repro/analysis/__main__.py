"""CLI entry point: `python -m repro.analysis [paths...]`.

Lints query/mapping workspaces (directories or individual `.sql`/`.gav`/
`.lav` files) against the enterprise demo catalog, or — with no paths —
reads one SQL statement from stdin. Exit status: 0 clean, 1 when any
error-severity diagnostic (or, with `--strict`, any warning) is found.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.analyzer import QueryAnalyzer
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.workspace import lint_workspace


def _build_catalog(scale: int):
    # The bench fixture is the demo schema every example targets; imported
    # here (not in workspace.py) so library users never pull in repro.bench.
    from repro.bench.datagen import BenchConfig, build_enterprise

    return build_enterprise(BenchConfig(scale=scale)).catalog()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for federated SQL, GAV/LAV mappings "
        "and query workspaces.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="workspace directories or .sql/.gav/.lav files; omit to read "
        "one SQL statement from stdin",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="scale factor for the demo enterprise catalog (default 1)",
    )
    args = parser.parse_args(argv)

    catalog = _build_catalog(args.scale)
    combined = AnalysisReport()
    if args.paths:
        for path in args.paths:
            report = lint_workspace(path, catalog)
            combined.extend(report.diagnostics)
    else:
        text = sys.stdin.read()
        if not text.strip():
            parser.error("no paths given and stdin is empty")
        combined = QueryAnalyzer(catalog=catalog).analyze(text)

    for diagnostic in combined:
        print(diagnostic.render())
    print(combined.headline())

    if combined.errors:
        return 1
    if args.strict and any(
        d.severity >= Severity.WARNING for d in combined
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
