"""`python -m repro` launches the federated SQL shell (see repro.shell)."""

from repro.shell import main

raise SystemExit(main())
