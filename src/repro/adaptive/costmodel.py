"""A cost model that prefers calibrated actuals over textbook guesses.

`FeedbackCostModel` overrides per-node estimation: a fetch (or a logical
subtree that *would* be pushed as one component query) whose signature has
recorded actuals is estimated at its calibrated row count; a bind join with
a calibrated per-key yield is estimated from the driving side's keys. Every
other node falls through to the classical `CostModel`, so calibration
composes with the static estimator instead of replacing it.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.cost import CostModel, PlanCost

from repro.adaptive.feedback import FeedbackStore
from repro.adaptive.signature import (
    bind_signature,
    fetch_signature,
    subtree_signature,
)


class FeedbackCostModel(CostModel):
    """Wraps the static model with LEO-style learned cardinalities."""

    def __init__(self, store: FeedbackStore, catalog):
        super().__init__(catalog)
        self.store = store
        self.catalog = catalog

    def _estimate_node(self, plan) -> PlanCost:
        if len(self.store) == 0:
            return super()._estimate_node(plan)
        calibrated = self._calibrated(plan)
        if calibrated is not None:
            return calibrated
        return super()._estimate_node(plan)

    # -- calibration lookups --------------------------------------------------------

    def _calibrated(self, plan) -> Optional[PlanCost]:
        from repro.federation.nodes import LogicalBindJoin, LogicalFetch

        if isinstance(plan, LogicalFetch):
            rows = self.store.calibrated_rows(
                fetch_signature(plan.source.name, plan.stmt)
            )
            if rows is None:
                return None
            stats = plan.est.column_stats if plan.est is not None else {}
            return PlanCost(rows, rows, stats)

        if isinstance(plan, LogicalBindJoin):
            per_key = self.store.calibrated_per_key(
                bind_signature(plan.source.name, plan.template, plan.right_key)
            )
            if per_key is None:
                return None
            left = self.estimate(plan.left)
            fetched = max(left.rows * per_key, 0.0)
            # INNER output is bounded by the probe matches; LEFT keeps drivers.
            rows = max(fetched, left.rows) if plan.kind == "LEFT" else fetched
            return PlanCost(max(rows, 0.0), left.cost + fetched, left.column_stats)

        signature = subtree_signature(plan, self.catalog)
        if signature is None:
            return None
        rows = self.store.calibrated_rows(signature)
        if rows is None:
            return None
        base = super()._estimate_node(plan)
        # Scale the subtree's cost with its corrected cardinality so the
        # operators above it (and the DP search) see a consistent estimate.
        scale = rows / base.rows if base.rows > 0 else 1.0
        return PlanCost(rows, max(base.cost * scale, rows), base.column_stats)
