"""Adaptive federated execution (the paper's §4 answer to unreliable stats).

Three cooperating levers close the loop between execution and planning:

- a **cardinality feedback store** (`FeedbackStore`) recording actual
  rows/bytes per canonical plan-node signature, consumed by a
  `FeedbackCostModel` on later plannings;
- **mid-query re-optimization** (`maybe_replan`) of the assembly tree once
  prefetch has turned estimates into actuals;
- **latency-aware prefetch scheduling** (`LatencyPredictor` + LPT
  submission) so skewed fetch durations stop serializing the worker pool.

`AdaptivePolicy`/`AdaptiveContext` are the configuration and state objects
the `FederatedEngine` accepts via its ``adaptive=`` parameter.
"""

from repro.adaptive.context import AdaptiveContext, AdaptivePolicy
from repro.adaptive.costmodel import FeedbackCostModel
from repro.adaptive.feedback import FeedbackEntry, FeedbackStore
from repro.adaptive.reopt import ActualsCostModel, ReplanReport, maybe_replan
from repro.adaptive.scheduler import LatencyPredictor, lpt_order
from repro.adaptive.signature import (
    bind_signature,
    fetch_signature,
    statement_shape,
    subtree_signature,
)

__all__ = [
    "AdaptiveContext",
    "AdaptivePolicy",
    "ActualsCostModel",
    "FeedbackCostModel",
    "FeedbackEntry",
    "FeedbackStore",
    "LatencyPredictor",
    "ReplanReport",
    "bind_signature",
    "fetch_signature",
    "lpt_order",
    "maybe_replan",
    "statement_shape",
    "subtree_signature",
]
