"""Mid-query re-optimization of the assembly plan.

After `_prefetch` materializes the component relations, their actual
cardinalities are free. When the worst actual-vs-estimated error ratio
crosses the policy threshold, the assembly tree above the (already
materialized, identity-preserved) fetches is re-ordered with a cost model
that answers with actuals, and bind joins whose driving side turned out too
large for key shipping are converted to ordinary hash joins over a plain
fetch. The original `FederatedPlan` is never mutated — it may live in the
plan cache — and the report makes the decision observable in `explain()`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.cost import CostModel, PlanCost
from repro.engine.joinorder import DP_LIMIT, reorder_joins
from repro.engine.logical import LogicalJoin
from repro.federation.nodes import LogicalBindJoin, LogicalFetch
from repro.sql.ast import BinaryOp
from repro.sql.exprutil import conjoin, split_conjuncts


@dataclass
class ReplanReport:
    """What mid-query re-optimization decided, and why."""

    root: object
    worst_ratio: float
    threshold: float
    #: (source, estimated rows, actual rows) per materialized fetch
    corrections: list = field(default_factory=list)
    converted_bind_joins: int = 0

    def describe(self) -> str:
        worst = (
            f"replanned: worst cardinality error {self.worst_ratio:.1f}x "
            f">= {self.threshold:.1f}x threshold"
        )
        if self.converted_bind_joins:
            worst += f"; {self.converted_bind_joins} bind join(s) -> hash join"
        return worst

    def pretty(self) -> str:
        return "\n".join("  " + line for line in self.root.pretty().splitlines())


class ActualsCostModel(CostModel):
    """Static model, except materialized fetches answer with actual rows."""

    def __init__(self, stats_provider, actual_rows: dict):
        super().__init__(stats_provider)
        self.actual_rows = actual_rows

    def _estimate_node(self, plan) -> PlanCost:
        if isinstance(plan, LogicalFetch):
            rows = self.actual_rows.get(id(plan))
            if rows is not None:
                stats = plan.est.column_stats if plan.est is not None else {}
                return PlanCost(rows, rows, stats)
        return super()._estimate_node(plan)


def maybe_replan(plan, runtime, planner, threshold: float) -> Optional[ReplanReport]:
    """Re-optimize `plan.root` against actuals; None when not warranted.

    Fetch nodes are preserved by identity, so the runtime's per-node result
    memo still serves them during assembly — replanning changes how the
    already-fetched relations combine, never re-fetches them.
    """
    actuals: dict[int, float] = {}
    corrections: list = []
    worst = 1.0
    for fetch in plan.fetches:
        relation = runtime.local.get(id(fetch))
        if relation is None:
            continue  # not materialized (e.g. a fetch under a bind join's probe)
        actual = float(len(relation))
        estimated = max(float(fetch.est_rows), 1.0)
        ratio = max(actual, 1.0) / estimated
        if ratio < 1.0:
            ratio = 1.0 / ratio
        actuals[id(fetch)] = actual
        corrections.append((fetch.source.name, fetch.est_rows, actual))
        worst = max(worst, ratio)
    if not actuals or worst < threshold:
        return None

    cost_model = ActualsCostModel(planner.catalog, actuals)
    dp_limit = getattr(planner, "join_dp_limit", None) or DP_LIMIT
    with cost_model.memo_scope():
        new_root = reorder_joins(plan.root, cost_model, dp_limit=dp_limit)
        new_root, converted = _reconsider_bind_joins(
            new_root, cost_model, planner.max_bind_keys
        )
    if converted == 0 and new_root.pretty() == plan.root.pretty():
        return None  # the actuals agree with the shape we already have
    return ReplanReport(new_root, worst, threshold, corrections, converted)


def _reconsider_bind_joins(root, cost_model, max_bind_keys: int):
    """Convert bind joins whose driving side outgrew key shipping.

    A bind join chosen for *optimization* (not a binding-pattern access
    path) with more actual driver rows than `max_bind_keys` would ship its
    keys in many IN-list chunks; fetching the probed template once and hash
    joining locally is the plan the planner would have chosen with correct
    estimates. Required bind joins are untouchable — key-driven lookup is
    their only access path.
    """
    converted = 0

    def rebuild(node):
        nonlocal converted
        children = [rebuild(child) for child in node.children]
        if children:
            node = node.with_children(children)
        if (
            isinstance(node, LogicalBindJoin)
            and not getattr(node, "required", False)
            and cost_model.estimate(node.left).rows > max_bind_keys
        ):
            fetch = LogicalFetch(
                node.template,
                node.source,
                node.fetch_schema,
                est_rows=node.est_rows,
                depends_on=node.depends_on,
                tables=node.tables,
            )
            fetch.degradable = node.degradable
            conjuncts = [BinaryOp("=", node.left_key, node.right_key)]
            conjuncts.extend(split_conjuncts(node.residual))
            converted += 1
            return LogicalJoin(node.left, fetch, node.kind, conjoin(conjuncts))
        return node

    return rebuild(root), converted
