"""Latency-aware prefetch scheduling (LPT).

`parallel_makespan` list-schedules fetches in submission order, so a long
fetch submitted last can leave every worker but one idle. The scheduler
predicts each fetch's duration — calibrated rows × per-source latency
profile when the engine has seen the source before, capability constants
otherwise — and submits the longest-predicted fetches first (the classical
LPT heuristic, within 4/3 of the optimal makespan). Reordering happens
*before* span creation, so traces remain deterministic: submission order is
a pure function of the plan and the store, never of thread completion.
"""

from __future__ import annotations

import threading
from typing import Optional


class LatencyPredictor:
    """Per-source seconds-per-byte profiles, learned from real fetches.

    Own observations win; a `QueryScoreboard` (fed by the tracer across
    queries, possibly from earlier sessions of the same process) is the
    fallback profile; with neither, callers use capability constants.
    """

    def __init__(self, scoreboard=None):
        self.scoreboard = scoreboard
        #: source name -> [calls, seconds, payload_bytes]
        self._profiles: dict[str, list] = {}
        self._lock = threading.Lock()

    def observe(self, source: str, seconds: float, payload_bytes: float) -> None:
        with self._lock:
            profile = self._profiles.get(source)
            if profile is None:
                profile = self._profiles[source] = [0, 0.0, 0.0]
            profile[0] += 1
            profile[1] += max(seconds, 0.0)
            profile[2] += max(payload_bytes, 0.0)

    def _profile(self, source: str) -> Optional[tuple]:
        with self._lock:
            profile = self._profiles.get(source)
            if profile is not None and profile[0] > 0:
                return tuple(profile)
        if self.scoreboard is not None:
            stats = self.scoreboard.sources.get(source)
            if stats is not None and stats.fetches > 0:
                return (stats.fetches, stats.seconds, float(stats.payload_bytes))
        return None

    def predict(self, source: str, payload_bytes: float) -> Optional[float]:
        """Predicted seconds for a fetch shipping `payload_bytes`, or None."""
        profile = self._profile(source)
        if profile is None:
            return None
        calls, seconds, total_bytes = profile
        if total_bytes > 0:
            return seconds / total_bytes * max(payload_bytes, 1.0)
        return seconds / calls


def static_fetch_seconds(node, rows: float, network, site: str) -> float:
    """Capability-constant duration prediction (no history needed)."""
    caps = node.source.capabilities
    payload = int(max(rows, 0.0) * node.schema.average_row_width())
    return (
        caps.per_query_overhead_s
        + max(rows, 0.0) * caps.time_per_cost_unit_s
        + network.transfer_seconds(node.source.name, site, payload, caps.wire_format)
    )


def lpt_order(fetches: list, durations: list) -> list:
    """Fetches sorted longest-predicted-first; ties keep submission order."""
    order = sorted(range(len(fetches)), key=lambda i: (-durations[i], i))
    return [fetches[i] for i in order]
