"""Policy knobs and the per-engine adaptive context.

`AdaptivePolicy` is the configuration surface (each lever independently
toggleable, so benchmarks can ablate: static vs. feedback vs.
feedback+LPT); `AdaptiveContext` bundles the live state — the feedback
store, the latency predictor — and is what the engine threads through
planning, prefetch and re-optimization. Everything here is engine-
independent, so one context can be shared by several engines over the
same catalog (they then share calibrations, deliberately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adaptive.feedback import FeedbackStore
from repro.adaptive.scheduler import (
    LatencyPredictor,
    lpt_order,
    static_fetch_seconds,
)
from repro.adaptive.signature import bind_signature, fetch_signature


@dataclass
class AdaptivePolicy:
    """Which adaptive levers are on, and their thresholds."""

    #: record actuals and plan with calibrated estimates
    feedback: bool = True
    #: re-optimize the assembly tree when actuals drift past the threshold
    replan: bool = True
    #: worst actual/estimated row ratio that triggers mid-query replanning
    replan_threshold: float = 4.0
    #: submit prefetches longest-predicted-first
    lpt: bool = True
    #: feedback store LRU bound
    max_entries: int = 512
    #: EWMA weight of the newest observation
    smoothing: float = 0.5
    #: smoothed-drift ratio that advances the feedback generation
    drift_ratio: float = 2.0


class AdaptiveContext:
    """Live adaptive state threaded through one (or more) engines."""

    def __init__(
        self,
        policy: Optional[AdaptivePolicy] = None,
        scoreboard=None,
    ):
        self.policy = policy or AdaptivePolicy()
        self.store = FeedbackStore(
            max_entries=self.policy.max_entries,
            smoothing=self.policy.smoothing,
            drift_ratio=self.policy.drift_ratio,
        )
        self.predictor = LatencyPredictor(scoreboard=scoreboard)

    @property
    def generation(self) -> int:
        return self.store.generation

    def attach(self, broker) -> None:
        """Invalidate calibrations on the broker's table-change events."""
        self.store.attach(broker)

    # -- observation (called from fetch workers) --------------------------------------

    def observe_fetch(
        self, node, rows: int, payload_bytes: float, seconds: float, from_cache: bool
    ) -> None:
        if not self.policy.feedback:
            return
        self.store.observe(
            fetch_signature(node.source.name, node.stmt),
            rows,
            payload_bytes,
            tags=node.depends_on,
        )
        if not from_cache and seconds > 0:
            self.predictor.observe(node.source.name, seconds, payload_bytes)

    def observe_bind_chunk(
        self,
        node,
        keys: int,
        rows: int,
        payload_bytes: float,
        seconds: float,
        from_cache: bool,
    ) -> None:
        if not self.policy.feedback:
            return
        self.store.observe(
            bind_signature(node.source.name, node.template, node.right_key),
            rows,
            payload_bytes,
            tags=node.depends_on,
            keys=keys,
        )
        if not from_cache and seconds > 0:
            self.predictor.observe(node.source.name, seconds, payload_bytes)

    # -- prediction / scheduling -------------------------------------------------------

    def predict_fetch_seconds(self, node, network, site: str) -> float:
        rows: Optional[float] = None
        if self.policy.feedback:
            rows = self.store.calibrated_rows(
                fetch_signature(node.source.name, node.stmt)
            )
        if rows is None:
            rows = max(float(node.est_rows), 0.0)
        payload = rows * node.schema.average_row_width()
        learned = self.predictor.predict(node.source.name, payload)
        if learned is not None:
            return learned
        return static_fetch_seconds(node, rows, network, site)

    def lpt_order(self, fetches: list, network, site: str) -> list:
        durations = [
            self.predict_fetch_seconds(node, network, site) for node in fetches
        ]
        return lpt_order(fetches, durations)

    # -- maintenance -------------------------------------------------------------------

    def clear(self) -> int:
        return self.store.clear()

    def render(self) -> str:
        return self.store.render()
