"""The cardinality feedback store (LEO-style).

After every fetch and bind-chunk the engine records the *actual* rows and
payload bytes under the node's canonical signature. Entries are EWMA-
smoothed so a drifting source converges instead of thrashing, bounded by an
LRU cap, and invalidated by the same ``table.*.changed`` broker events that
evict the fetch cache. A monotonic `generation` counter advances on every
*material* change (new signature, large drift, invalidation, clear);
plan-cache entries remember the generation they were planned at, so a
calibrated model never serves a stale ordering.
"""

from __future__ import annotations

import fnmatch
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional


def _ratio(a: float, b: float) -> float:
    """Symmetric error ratio of two row counts (both clamped to >= 1)."""
    a = max(a, 1.0)
    b = max(b, 1.0)
    return a / b if a >= b else b / a


@dataclass
class FeedbackEntry:
    """Calibrated actuals for one plan-node signature."""

    signature: str
    rows: float
    payload_bytes: float = 0.0
    observations: int = 1
    #: rows returned per shipped key (bind-join signatures only)
    per_key: Optional[float] = None
    #: lower-cased table names for broker invalidation
    tags: frozenset = field(default_factory=frozenset)


class FeedbackStore:
    """Bounded, invalidation-aware store of calibrated cardinalities.

    Thread-safe: fetches observe from worker threads. Note that two
    concurrent observations of the *same* signature land in clock order,
    so replay determinism additionally requires deterministic submission
    order (the engine runs its property tests with one worker).
    """

    def __init__(
        self,
        max_entries: int = 512,
        smoothing: float = 0.5,
        drift_ratio: float = 2.0,
    ):
        self.max_entries = max(1, max_entries)
        self.smoothing = min(max(smoothing, 0.0), 1.0)
        #: smoothed-vs-previous ratio above which a generation bump is due
        self.drift_ratio = max(drift_ratio, 1.0)
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, FeedbackEntry] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # -- recording -----------------------------------------------------------------

    def observe(
        self,
        signature: str,
        rows: float,
        payload_bytes: float = 0.0,
        tags=frozenset(),
        keys: Optional[int] = None,
    ) -> None:
        """Fold one actual observation into the store."""
        rows = max(float(rows), 0.0)
        per_key = rows / max(keys, 1) if keys is not None else None
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                entry = FeedbackEntry(
                    signature,
                    rows,
                    float(payload_bytes),
                    tags=frozenset(t.lower() for t in tags),
                    per_key=per_key,
                )
                self._entries[signature] = entry
                material = True
            else:
                previous = entry.rows
                alpha = self.smoothing
                entry.rows = alpha * rows + (1.0 - alpha) * entry.rows
                entry.payload_bytes = (
                    alpha * float(payload_bytes) + (1.0 - alpha) * entry.payload_bytes
                )
                entry.observations += 1
                if per_key is not None:
                    entry.per_key = (
                        per_key
                        if entry.per_key is None
                        else alpha * per_key + (1.0 - alpha) * entry.per_key
                    )
                self._entries.move_to_end(signature)
                material = _ratio(entry.rows, previous) >= self.drift_ratio
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            if material:
                self.generation += 1

    # -- lookup --------------------------------------------------------------------

    def calibrated_rows(self, signature: str) -> Optional[float]:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(signature)
            return max(entry.rows, 0.0)

    def calibrated_per_key(self, signature: str) -> Optional[float]:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None or entry.per_key is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(signature)
            return max(entry.per_key, 0.0)

    def calibrated_payload(self, signature: str) -> Optional[float]:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                return None
            return max(entry.payload_bytes, 0.0)

    def entries(self) -> list:
        """Snapshot of entries, most recently used last."""
        with self._lock:
            return list(self._entries.values())

    # -- invalidation ---------------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Drop every calibration touching `table`; returns the drop count."""
        table = table.lower()
        with self._lock:
            doomed = [
                sig
                for sig, entry in self._entries.items()
                if table in entry.tags
            ]
            for sig in doomed:
                del self._entries[sig]
            if doomed:
                self.generation += 1
            return len(doomed)

    def attach(self, broker) -> None:
        """Subscribe to ``table.<name>.changed`` events (same as the caches)."""
        broker.subscribe("table.*.changed", self._on_change)

    def _on_change(self, message) -> None:
        table = None
        payload = getattr(message, "payload", None)
        if isinstance(payload, dict):
            table = payload.get("table")
        if table is None:
            topic = getattr(message, "topic", "")
            if fnmatch.fnmatch(topic, "table.*.changed"):
                table = topic.split(".", 2)[1]
        if table:
            self.invalidate_table(str(table))

    def clear(self) -> int:
        """Drop all calibrations (the shell's ``\\feedback clear``)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            if count:
                self.generation += 1
            return count

    # -- reporting ------------------------------------------------------------------

    def render(self, width: int = 72) -> str:
        """Aligned text listing for the shell's ``\\feedback`` command."""
        entries = self.entries()
        lines = [
            f"feedback: {len(entries)} calibration(s), generation {self.generation}, "
            f"{self.hits} hit(s), {self.misses} miss(es)"
        ]
        for entry in entries:
            sig = entry.signature
            if len(sig) > width:
                sig = sig[: width - 1] + "…"
            detail = f"rows={entry.rows:.1f} obs={entry.observations}"
            if entry.per_key is not None:
                detail += f" rows/key={entry.per_key:.2f}"
            lines.append(f"  {detail}  {sig}")
        return "\n".join(lines)
