"""Canonical plan-node signatures for cardinality feedback.

A feedback entry must survive re-planning: the second planning of the same
query builds *new* plan objects, so actuals recorded during execution have
to be keyed by something stable. The signature is the source name plus the
*shape* of the pushed-down SQL — the statement with its select list replaced
by ``*`` (column pruning runs after join reordering, so planning-time
subtrees and executed fetches legitimately differ in their select lists)
and its WHERE conjuncts sorted by canonical text (conjunct order is an
artifact of pushdown order, not of what the source computes).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import EIIError
from repro.sql.ast import Select, SelectItem, Star
from repro.sql.exprutil import conjoin, split_conjuncts
from repro.sql.printer import to_sql


def statement_shape(stmt: Select) -> str:
    """Canonical text of a component statement's cardinality-relevant shape."""
    where = stmt.where
    if where is not None:
        conjuncts = sorted(split_conjuncts(where), key=to_sql)
        where = conjoin(conjuncts)
    shaped = Select(
        items=(SelectItem(Star()),),
        from_tables=stmt.from_tables,
        joins=stmt.joins,
        where=where,
        group_by=stmt.group_by,
        having=stmt.having,
        # ORDER BY never changes the row count; LIMIT and DISTINCT do.
        order_by=(),
        limit=stmt.limit,
        distinct=stmt.distinct,
    )
    return to_sql(shaped)


def fetch_signature(source_name: str, stmt: Select) -> str:
    """Signature for a whole component fetch at one source."""
    return f"{source_name}::{statement_shape(stmt)}"


def bind_signature(source_name: str, template: Select, right_key) -> str:
    """Signature for a bind join's probe template (IN-lists stripped).

    Chunks of one bind join share this signature: the per-chunk IN-list is
    execution detail, while the calibrated quantity is rows *per shipped
    key* against the template's shape.
    """
    key = f"{(right_key.qualifier or '').lower()}.{right_key.name.lower()}"
    return f"{source_name}::bind[{key}]::{statement_shape(template)}"


def subtree_signature(plan, catalog) -> Optional[str]:
    """Signature of a logical subtree *as if* it were pushed to its source.

    Lets a `FeedbackCostModel` recognize, during the next planning pass,
    the same single-source subtree whose fetch it observed at runtime.
    Returns None for subtrees that span sources or cannot be expressed as
    one component SELECT (those never become fetches, so there is nothing
    recorded under their name anyway).
    """
    from repro.engine.logical import LogicalScan
    from repro.federation.nodes import LogicalBindJoin, LogicalFetch
    from repro.federation.planner import plan_to_select

    source: Optional[str] = None
    for node in plan.walk():
        if isinstance(node, (LogicalFetch, LogicalBindJoin)):
            return None
        if isinstance(node, LogicalScan):
            try:
                entry = catalog.entry(node.table_name)
            except EIIError:
                return None
            if source is None:
                source = entry.source.name
            elif entry.source.name != source:
                return None
    if source is None:
        return None
    try:
        stmt = plan_to_select(plan, catalog)
    except EIIError:
        return None
    return fetch_signature(source, stmt)
