"""Web-service sources with binding patterns (limited access paths)."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.common.errors import CapabilityError
from repro.common.relation import Relation
from repro.common.schema import RelSchema
from repro.sources.base import SCAN_ONLY, DataSource, SourceCapabilities
from repro.sql.ast import BinaryOp, ColumnRef, InList, Literal, Select, Star
from repro.sql.exprutil import split_conjuncts
from repro.storage.stats import TableStats
from repro.storage.table import Table


class WebServiceSource(DataSource):
    """A source reachable only through a keyed lookup operation.

    Classic data-integration *binding pattern*: the table's rows can only be
    retrieved by supplying values for the bound column (think `getOrders
    (customerId)`). The federated planner must therefore drive this source
    with a bind join: collect keys from another source first, then probe.

    A component query must be `SELECT cols FROM t WHERE key = v` or
    `... WHERE key IN (v1, …)`; anything else raises `CapabilityError`.
    """

    def __init__(
        self,
        name: str,
        table_name: str,
        columns: Sequence[tuple],
        bound_column: str,
        handler: Optional[Callable] = None,
        rows=None,
        capabilities: Optional[SourceCapabilities] = None,
        per_call_overhead_s: float = 0.03,
    ):
        capabilities = capabilities or SourceCapabilities(
            dialect=SCAN_ONLY,
            per_query_overhead_s=per_call_overhead_s,
            binding_patterns={table_name.lower(): bound_column.lower()},
        )
        super().__init__(name, capabilities)
        self.table_name = table_name
        self.bound_column = bound_column
        self._backing = Table.build(table_name, columns, rows or [])
        self._backing.create_index(bound_column)
        self._handler = handler

    def table_names(self) -> list[str]:
        return [self.table_name]

    def schema_of(self, table: str) -> RelSchema:
        self._check_table(table)
        return self._backing.schema

    def stats_of(self, table: str) -> Optional[TableStats]:
        self._check_table(table)
        return TableStats.collect(self._backing.schema, list(self._backing.rows()))

    def lookup(self, key_value) -> list[tuple]:
        """One service call: all rows for one key value."""
        if self._handler is not None:
            return [tuple(row) for row in self._handler(key_value)]
        return self._backing.lookup(self.bound_column, key_value)

    def execute_select(self, stmt: Select, metrics=None) -> Relation:
        self._check_access()
        if len(stmt.tables()) != 1:
            raise CapabilityError(f"{self.name!r} serves a single operation")
        table_ref = stmt.from_tables[0]
        self._check_table(table_ref.name)
        keys = self._extract_keys(stmt)
        if keys is None:
            raise CapabilityError(
                f"{self.name!r} requires an equality or IN binding on "
                f"{self.bound_column!r}"
            )
        schema = self._backing.schema.with_qualifier(table_ref.binding)
        rows: list[tuple] = []
        for key in keys:
            rows.extend(self.lookup(key))
            # Every distinct key is one service invocation.
            self._account(metrics, 0.0)
        positions = self._projection(stmt, schema)
        out_rows = [tuple(row[i] for i in positions) for row in rows]
        return Relation(schema.project(positions), out_rows)

    # -- internals --------------------------------------------------------------

    def _check_table(self, name: str) -> None:
        if name.lower() != self.table_name.lower():
            raise CapabilityError(f"{self.name!r} has no table {name!r}")

    def _extract_keys(self, stmt: Select):
        """Pull bound-column key values from the WHERE clause."""
        if stmt.where is None:
            return None
        keys: list = []
        found = False
        for conjunct in split_conjuncts(stmt.where):
            if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                sides = (conjunct.left, conjunct.right)
                for a, b in (sides, sides[::-1]):
                    if (
                        isinstance(a, ColumnRef)
                        and a.name.lower() == self.bound_column.lower()
                        and isinstance(b, Literal)
                    ):
                        keys.append(b.value)
                        found = True
            elif (
                isinstance(conjunct, InList)
                and not conjunct.negated
                and isinstance(conjunct.operand, ColumnRef)
                and conjunct.operand.name.lower() == self.bound_column.lower()
                and all(isinstance(item, Literal) for item in conjunct.items)
            ):
                keys.extend(item.value for item in conjunct.items)
                found = True
            else:
                raise CapabilityError(
                    f"{self.name!r} cannot evaluate predicate {conjunct}"
                )
        if not found:
            return None
        # de-duplicate, preserving order
        seen = set()
        unique = []
        for key in keys:
            if key not in seen:
                seen.add(key)
                unique.append(key)
        return unique

    def _projection(self, stmt: Select, schema: RelSchema) -> list[int]:
        positions: list[int] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                positions.extend(range(len(schema)))
            elif isinstance(item.expr, ColumnRef):
                positions.append(schema.index_of(item.expr.name, item.expr.qualifier))
            else:
                raise CapabilityError(f"{self.name!r} cannot compute {item.expr}")
        return positions
