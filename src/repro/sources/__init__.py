"""Heterogeneous data sources behind capability-described adapters.

The panel's introduction defines EII query processing as producing plans
that "span multiple data sources and [deal] with the limitations and
capabilities of each source". This package supplies four source families
spanning that capability spectrum:

* `RelationalSource` — a full DBMS (our storage engine + local optimizer)
  behind a vendor `Dialect`; accepts whatever the dialect says it accepts.
* `CsvSource` — a spreadsheet-grade file: scan-only, nothing pushes.
* `WebServiceSource` — an API with a *binding pattern*: rows can only be
  retrieved by supplying a key, which forces bind-join plans.
* `DocumentSource` — a NETMARK-backed schema-less store exposing a
  schema-on-read relational view (wired in `repro.netmark`).
"""

from repro.sources.base import DataSource, SourceCapabilities, SCAN_ONLY
from repro.sources.relational import RelationalSource
from repro.sources.csvfile import CsvSource
from repro.sources.webservice import WebServiceSource

__all__ = [
    "CsvSource",
    "DataSource",
    "RelationalSource",
    "SCAN_ONLY",
    "SourceCapabilities",
    "WebServiceSource",
]
