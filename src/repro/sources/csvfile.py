"""Spreadsheet/CSV-grade sources: scan-only, nothing pushes down."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.errors import CapabilityError
from repro.common.relation import Relation
from repro.common.schema import RelSchema
from repro.sources.base import SCAN_ONLY, DataSource, SourceCapabilities
from repro.sql.ast import ColumnRef, Select, Star
from repro.storage.io import load_csv
from repro.storage.stats import TableStats
from repro.storage.table import Table


class CsvSource(DataSource):
    """One or more flat files exposed as scan-only tables.

    Ashish's §2 point that "data … could well be stored in a spreadsheet"
    is modeled here: the source accepts only `SELECT [cols] FROM t` — every
    filter, join and aggregate over its data runs at the mediator.
    """

    def __init__(self, name: str, capabilities: Optional[SourceCapabilities] = None):
        capabilities = capabilities or SourceCapabilities(
            dialect=SCAN_ONLY, per_query_overhead_s=0.02
        )
        super().__init__(name, capabilities)
        self._tables: dict[str, Table] = {}

    # -- loading -------------------------------------------------------------------

    def add_table(self, name: str, columns: Sequence[tuple], rows) -> Table:
        table = Table.build(name, columns, rows)
        self._tables[name.lower()] = table
        return table

    def add_csv(self, name: str, path, columns: Sequence[tuple]) -> Table:
        return self.add_table(name, columns, load_csv(path, columns))

    # -- DataSource protocol -----------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schema_of(self, table: str) -> RelSchema:
        return self._table(table).schema

    def stats_of(self, table: str) -> Optional[TableStats]:
        stored = self._table(table)
        return TableStats.collect(stored.schema, list(stored.rows()))

    def execute_select(self, stmt: Select, metrics=None) -> Relation:
        self._check_access()
        if (
            len(stmt.tables()) != 1
            or stmt.where is not None
            or stmt.group_by
            or stmt.having is not None
            or stmt.order_by
            or stmt.limit is not None
            or stmt.distinct
        ):
            raise CapabilityError(f"{self.name!r} is scan-only")
        table = self._table(stmt.from_tables[0].name)
        binding = stmt.from_tables[0].binding
        rows = list(table.rows())
        schema = table.schema.with_qualifier(binding)

        positions: list[int] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                positions.extend(range(len(schema)))
            elif isinstance(item.expr, ColumnRef):
                positions.append(schema.index_of(item.expr.name, item.expr.qualifier))
            else:
                raise CapabilityError(f"{self.name!r} cannot compute {item.expr}")
        out_schema = schema.project(positions)
        out_rows = [tuple(row[i] for i in positions) for row in rows]
        # Scanning a file costs time proportional to the full file, not the
        # projected width — that is the point of scan-only sources.
        self._account(metrics, len(rows) * self.capabilities.time_per_cost_unit_s)
        return Relation(out_schema, out_rows)

    def _table(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise CapabilityError(f"{self.name!r} has no table {name!r}")
        return table
