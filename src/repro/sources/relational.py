"""A full relational backend behind a vendor dialect."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CapabilityError
from repro.common.relation import Relation
from repro.common.schema import RelSchema
from repro.engine.executor import LocalEngine
from repro.sources.base import DataSource, SourceCapabilities
from repro.sql.ast import Select
from repro.sql.printer import to_sql
from repro.storage.catalog import Database
from repro.storage.stats import TableStats
from repro.wrappers.dialects import Dialect, QUIRK_AWARE
from repro.wrappers.pushability import can_push_select


class RelationalSource(DataSource):
    """A DBMS source: our storage engine plus its cost-based local engine.

    The `dialect` models the wrapper's knowledge of this backend, *not* the
    backend's true power — pass a lower-fidelity dialect to reproduce the
    E3 wrapper-generations experiment. Component queries outside the
    declared dialect raise `CapabilityError` (the planner must not generate
    them; the mediator compensates instead).
    """

    def __init__(
        self,
        name: str,
        db: Database,
        dialect: Dialect = QUIRK_AWARE,
        capabilities: Optional[SourceCapabilities] = None,
    ):
        capabilities = capabilities or SourceCapabilities(dialect=dialect)
        if capabilities.dialect is not dialect:
            capabilities.dialect = dialect
        super().__init__(name, capabilities)
        self.db = db
        self.engine = LocalEngine(db)
        #: SQL text of every component query received, in the source dialect
        #: (what a real wrapper would send over the wire). Useful in tests
        #: and EXPLAIN output.
        self.query_log: list[str] = []

    def table_names(self) -> list[str]:
        return self.db.table_names()

    def schema_of(self, table: str) -> RelSchema:
        return self.db.table(table).schema

    def stats_of(self, table: str) -> Optional[TableStats]:
        return self.db.stats_for(table)

    def execute_select(self, stmt: Select, metrics=None) -> Relation:
        self._check_access()
        dialect = self.capabilities.dialect
        if not can_push_select(stmt, dialect):
            raise CapabilityError(
                f"source {self.name!r} ({dialect}) cannot run: {to_sql(stmt)}"
            )
        self.query_log.append(to_sql(stmt, dialect.print_options))
        logical = self.engine.logical_plan(stmt)
        estimate = self.engine.cost_model.estimate(logical)
        result = self.engine.lower(logical).relation()
        self._account(metrics, estimate.cost * self.capabilities.time_per_cost_unit_s)
        return result
