"""DataSource protocol and capability descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import SourceError
from repro.common.relation import Relation
from repro.common.schema import RelSchema
from repro.netsim.network import WireFormat
from repro.sql.ast import Select
from repro.storage.stats import TableStats
from repro.wrappers.dialects import Dialect

#: A pseudo-dialect for sources that can only be scanned in full.
SCAN_ONLY = Dialect(
    name="scan_only",
    fidelity="scan_only",
    supported_predicates=frozenset(),
    supported_functions=frozenset(),
    supports_join=False,
    supports_aggregate=False,
    supports_sort_limit=False,
    supports_arithmetic=False,
)


@dataclass
class SourceCapabilities:
    """Everything the federated planner knows about a source.

    `per_query_overhead_s` is the fixed cost of one component query
    (connection + parse + admission); `time_per_cost_unit_s` converts the
    local cost model's units into simulated seconds, so a slow source can be
    modeled by raising it. `allows_external_queries` models Bitton's
    carefully-tuned production systems whose administrators "would not even
    consider" federated access — the advisor treats such sources as
    warehouse-only.
    """

    dialect: Dialect
    wire_format: WireFormat = WireFormat.BINARY
    per_query_overhead_s: float = 0.005
    time_per_cost_unit_s: float = 2e-6
    allows_external_queries: bool = True
    #: table -> column that must be bound (by a literal or a join key) before
    #: the source will answer; names are case-normalized at construction
    binding_patterns: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        self.binding_patterns = {
            table.lower(): column.lower()
            for table, column in self.binding_patterns.items()
        }

    def required_binding(self, table: str) -> Optional[str]:
        return self.binding_patterns.get(table.lower())


class DataSource:
    """Abstract data source: a named site exporting tables.

    Component queries (`execute_select`) are expressed against the source's
    *local* table names; the federation catalog handles global naming.
    """

    def __init__(self, name: str, capabilities: SourceCapabilities):
        self.name = name
        self.capabilities = capabilities

    # -- schema ------------------------------------------------------------------

    def table_names(self) -> list[str]:
        raise NotImplementedError

    def schema_of(self, table: str) -> RelSchema:
        """Unqualified schema of a local table."""
        raise NotImplementedError

    def stats_of(self, table: str) -> Optional[TableStats]:
        """Statistics if the source exposes them (may be None)."""
        return None

    def estimated_rows(self, table: str) -> float:
        stats = self.stats_of(table)
        return float(stats.row_count) if stats is not None else 1000.0

    # -- execution ----------------------------------------------------------------

    def execute_select(self, stmt: Select, metrics=None) -> Relation:
        """Run a component query. Raises CapabilityError if unsupported.

        Implementations must call `self._account(metrics, seconds)` so that
        per-source query counts and simulated execution time are recorded.
        """
        raise NotImplementedError

    def _account(self, metrics, execution_seconds: float) -> None:
        if metrics is not None:
            metrics.record_source_query(
                self.name,
                self.capabilities.per_query_overhead_s + execution_seconds,
            )

    def _check_access(self) -> None:
        if not self.capabilities.allows_external_queries:
            raise SourceError(
                f"source {self.name!r} does not admit external queries"
            )

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
