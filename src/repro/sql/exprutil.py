"""Expression-tree utilities used by the optimizer and the federation layer.

Expressions are immutable, so every rewrite returns a fresh tree.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
    and_all,
)
from repro.sql.functions import is_aggregate_name


def children(expr: Expr) -> list[Expr]:
    """Direct child expressions of a node."""
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, CaseWhen):
        out: list[Expr] = []
        for cond, value in expr.whens:
            out.extend((cond, value))
        if expr.default is not None:
            out.append(expr.default)
        return out
    return []


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of the expression tree."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in the expression, in traversal order."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


def referenced_qualifiers(expr: Expr) -> set[str]:
    """The set of table bindings (qualifiers) the expression touches.

    Unqualified references yield an empty-string marker so callers know the
    expression has references they cannot attribute to a single table.
    """
    out: set[str] = set()
    for ref in column_refs(expr):
        out.add(ref.qualifier or "")
    for node in walk(expr):
        if isinstance(node, Star):
            out.add(node.qualifier or "")
    return out


def contains_aggregate(expr: Expr) -> bool:
    return any(
        isinstance(node, FuncCall) and is_aggregate_name(node.name)
        for node in walk(expr)
    )


def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Iterable[Expr]) -> Optional[Expr]:
    """Inverse of `split_conjuncts`; returns None for no conjuncts."""
    return and_all(list(conjuncts))


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: `fn` may return a replacement node or None to keep.

    Children are rewritten first so `fn` sees already-rewritten subtrees.
    """
    if isinstance(expr, BinaryOp):
        rebuilt: Expr = BinaryOp(expr.op, transform(expr.left, fn), transform(expr.right, fn))
    elif isinstance(expr, UnaryOp):
        rebuilt = UnaryOp(expr.op, transform(expr.operand, fn))
    elif isinstance(expr, FuncCall):
        rebuilt = FuncCall(expr.name, tuple(transform(a, fn) for a in expr.args), expr.distinct)
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(transform(expr.operand, fn), expr.negated)
    elif isinstance(expr, InList):
        rebuilt = InList(
            transform(expr.operand, fn),
            tuple(transform(i, fn) for i in expr.items),
            expr.negated,
        )
    elif isinstance(expr, Like):
        rebuilt = Like(transform(expr.operand, fn), transform(expr.pattern, fn), expr.negated)
    elif isinstance(expr, Between):
        rebuilt = Between(
            transform(expr.operand, fn),
            transform(expr.low, fn),
            transform(expr.high, fn),
            expr.negated,
        )
    elif isinstance(expr, CaseWhen):
        rebuilt = CaseWhen(
            tuple((transform(c, fn), transform(v, fn)) for c, v in expr.whens),
            transform(expr.default, fn) if expr.default is not None else None,
        )
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def substitute_columns(expr: Expr, mapping: dict) -> Expr:
    """Replace ColumnRefs per `mapping`.

    Keys may be `ColumnRef`s or `(qualifier, name)` tuples (lower-cased
    name/qualifier); values are replacement expressions. Used for view
    unfolding and GAV reformulation.
    """

    def rewrite(node: Expr) -> Optional[Expr]:
        if not isinstance(node, ColumnRef):
            return None
        direct = mapping.get(node)
        if direct is not None:
            return direct
        key = (
            (node.qualifier or "").lower(),
            node.name.lower(),
        )
        return mapping.get(key)

    return transform(expr, rewrite)


def requalify(expr: Expr, old: Optional[str], new: Optional[str]) -> Expr:
    """Rewrite qualifiers equal to `old` (case-insensitive) to `new`."""

    def rewrite(node: Expr) -> Optional[Expr]:
        if isinstance(node, ColumnRef):
            node_q = (node.qualifier or "").lower()
            if node_q == (old or "").lower():
                return ColumnRef(node.name, new)
        return None

    return transform(expr, rewrite)


def is_literal_comparison(expr: Expr) -> bool:
    """True for `col <op> literal` / `literal <op> col` shapes."""
    if not isinstance(expr, BinaryOp):
        return False
    if expr.op not in ("=", "<>", "<", "<=", ">", ">="):
        return False
    pair = (expr.left, expr.right)
    has_col = any(isinstance(side, ColumnRef) for side in pair)
    has_lit = any(isinstance(side, Literal) for side in pair)
    return has_col and has_lit


def equi_join_sides(expr: Expr) -> Optional[tuple[ColumnRef, ColumnRef]]:
    """Return (left_col, right_col) if the expression is `col = col`."""
    if (
        isinstance(expr, BinaryOp)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
    ):
        return expr.left, expr.right
    return None
