"""Scalar and aggregate function registries.

Wrappers consult `SCALAR_FUNCTIONS`/`AGGREGATE_FUNCTIONS` membership when
deciding whether an expression can be pushed to a source dialect; the local
engine uses the implementations directly.

Scalar functions follow SQL NULL semantics: any NULL argument yields NULL,
except COALESCE / IFNULL which exist to handle NULLs.
"""

from __future__ import annotations

import datetime
import math

from repro.common.errors import TypeMismatchError

_NULL_TOLERANT = {"COALESCE", "IFNULL"}


def _upper(s):
    return s.upper()


def _lower(s):
    return s.lower()


def _length(s):
    return len(s)


def _abs(x):
    return abs(x)


def _round(x, digits=0):
    result = round(x, int(digits))
    return result if digits else int(result)


def _floor(x):
    return math.floor(x)


def _ceil(x):
    return math.ceil(x)


def _substr(s, start, length=None):
    # SQL SUBSTR is 1-based; negative/zero starts clamp to the beginning.
    begin = max(int(start) - 1, 0)
    if length is None:
        return s[begin:]
    return s[begin : begin + max(int(length), 0)]


def _trim(s):
    return s.strip()


def _concat(*parts):
    return "".join(str(part) for part in parts)


def _replace(s, old, new):
    return s.replace(old, new)


def _year(d: datetime.date):
    return d.year


def _month(d: datetime.date):
    return d.month


def _day(d: datetime.date):
    return d.day


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _ifnull(value, default):
    return default if value is None else value


def _mod(a, b):
    return a % b


def _power(a, b):
    return a ** b


def _sqrt(x):
    return math.sqrt(x)


def _sign(x):
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


SCALAR_FUNCTIONS = {
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
    "ABS": _abs,
    "ROUND": _round,
    "FLOOR": _floor,
    "CEIL": _ceil,
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "TRIM": _trim,
    "CONCAT": _concat,
    "REPLACE": _replace,
    "YEAR": _year,
    "MONTH": _month,
    "DAY": _day,
    "COALESCE": _coalesce,
    "IFNULL": _ifnull,
    "MOD": _mod,
    "POWER": _power,
    "SQRT": _sqrt,
    "SIGN": _sign,
}


def call_scalar(name: str, args: list):
    """Invoke a scalar function with SQL NULL propagation."""
    func = SCALAR_FUNCTIONS.get(name)
    if func is None:
        raise TypeMismatchError(f"unknown scalar function {name!r}")
    if name not in _NULL_TOLERANT and any(arg is None for arg in args):
        return None
    try:
        return func(*args)
    except (TypeError, AttributeError) as exc:
        raise TypeMismatchError(f"{name} got invalid arguments {args!r}") from exc


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Incremental aggregate: add values one at a time, then finish().

    NULLs are skipped per SQL semantics (except COUNT(*) which is handled by
    the engine feeding a non-NULL marker).
    """

    def add(self, value) -> None:
        raise NotImplementedError

    def finish(self):
        raise NotImplementedError


class CountAgg(Aggregate):
    def __init__(self):
        self.count = 0

    def add(self, value):
        if value is not None:
            self.count += 1

    def finish(self):
        return self.count


class SumAgg(Aggregate):
    def __init__(self):
        self.total = None

    def add(self, value):
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def finish(self):
        return self.total


class AvgAgg(Aggregate):
    def __init__(self):
        self.total = 0.0
        self.count = 0

    def add(self, value):
        if value is None:
            return
        self.total += value
        self.count += 1

    def finish(self):
        return self.total / self.count if self.count else None


class MinAgg(Aggregate):
    def __init__(self):
        self.best = None

    def add(self, value):
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def finish(self):
        return self.best


class MaxAgg(Aggregate):
    def __init__(self):
        self.best = None

    def add(self, value):
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def finish(self):
        return self.best


class DistinctAgg(Aggregate):
    """Wraps another aggregate, feeding it each distinct value once."""

    def __init__(self, inner: Aggregate):
        self.inner = inner
        self.seen: set = set()

    def add(self, value):
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def finish(self):
        return self.inner.finish()


AGGREGATE_FUNCTIONS = {
    "COUNT": CountAgg,
    "SUM": SumAgg,
    "AVG": AvgAgg,
    "MIN": MinAgg,
    "MAX": MaxAgg,
}


def is_aggregate_name(name: str) -> bool:
    return name.upper() in AGGREGATE_FUNCTIONS


def make_aggregate(name: str, distinct: bool = False) -> Aggregate:
    cls = AGGREGATE_FUNCTIONS.get(name.upper())
    if cls is None:
        raise TypeMismatchError(f"unknown aggregate {name!r}")
    agg = cls()
    return DistinctAgg(agg) if distinct else agg
