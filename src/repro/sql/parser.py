"""Recursive-descent parser for the SQL subset.

Entry points:

* `parse(text)` — any supported statement (SELECT / INSERT / UPDATE / DELETE).
* `parse_select(text)` — a SELECT, raising if the text is another statement.
* `parse_expression(text)` — a bare scalar/boolean expression.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.common.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    UnionSelect,
    Update,
)
from repro.sql.lexer import Token, tokenize

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.fail(f"expected {word}")

    def accept_op(self, *ops: str) -> Optional[str]:
        if self.current.is_op(*ops):
            return self.advance().value
        return None

    def expect_op(self, op: str) -> None:
        if self.accept_op(op) is None:
            self.fail(f"expected {op!r}")

    def expect_ident(self) -> str:
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            return token.value
        # Permit non-reserved-looking keywords as identifiers where unambiguous.
        self.fail("expected identifier")

    def fail(self, message: str):
        token = self.current
        raise ParseError(
            f"{message}, found {token.kind}:{token.value!r}",
            position=token.position,
            text=self.text,
        )

    def expect_eof(self) -> None:
        if self.current.kind != "EOF":
            self.fail("unexpected trailing input")

    # -- statements ----------------------------------------------------------

    def parse_statement(self):
        if self.current.is_keyword("SELECT"):
            return self.parse_select_or_union()
        if self.current.is_keyword("INSERT"):
            return self.parse_insert()
        if self.current.is_keyword("UPDATE"):
            return self.parse_update()
        if self.current.is_keyword("DELETE"):
            return self.parse_delete()
        self.fail("expected SELECT, INSERT, UPDATE or DELETE")

    def parse_select_or_union(self):
        """A SELECT, or a UNION [ALL] chain of SELECTs.

        A trailing ORDER BY / LIMIT syntactically attaches to the last
        branch; per standard SQL it governs the whole union, so it is
        lifted onto the `UnionSelect` node.
        """
        selects = [self.parse_select_stmt()]
        union_all = None
        while self.accept_keyword("UNION"):
            this_all = self.accept_keyword("ALL")
            if union_all is None:
                union_all = this_all
            elif union_all != this_all:
                self.fail("mixing UNION and UNION ALL is not supported")
            selects.append(self.parse_select_stmt())
        if len(selects) == 1:
            return selects[0]
        from dataclasses import replace

        last = selects[-1]
        order_by, limit = last.order_by, last.limit
        selects[-1] = replace(last, order_by=(), limit=None)
        return UnionSelect(tuple(selects), bool(union_all), order_by, limit)

    def parse_select_stmt(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())

        from_tables: list[TableRef] = []
        joins: list[JoinClause] = []
        if self.accept_keyword("FROM"):
            from_tables.append(self.parse_table_ref())
            while True:
                if self.accept_op(","):
                    from_tables.append(self.parse_table_ref())
                    continue
                join = self.maybe_parse_join()
                if join is None:
                    break
                joins.append(join)

        where = self.parse_expr() if self.accept_keyword("WHERE") else None

        group_by: list[Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_keyword("HAVING") else None

        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                self.fail("expected integer LIMIT")
            limit = self.advance().value

        return Select(
            items=tuple(items),
            from_tables=tuple(from_tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return TableRef(name, alias)

    def maybe_parse_join(self) -> Optional[JoinClause]:
        kind = None
        if self.current.is_keyword("JOIN"):
            self.advance()
            kind = "INNER"
        elif self.current.is_keyword("INNER"):
            self.advance()
            self.expect_keyword("JOIN")
            kind = "INNER"
        elif self.current.is_keyword("LEFT"):
            self.advance()
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            kind = "LEFT"
        elif self.current.is_keyword("CROSS"):
            self.advance()
            self.expect_keyword("JOIN")
            table = self.parse_table_ref()
            return JoinClause(table, "INNER", None)
        if kind is None:
            return None
        table = self.parse_table_ref()
        self.expect_keyword("ON")
        condition = self.parse_expr()
        return JoinClause(table, kind, condition)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, ascending)

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_op("("):
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_op(","):
            rows.append(self.parse_value_row())
        return Insert(table, tuple(columns), tuple(rows))

    def parse_value_row(self) -> tuple:
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.accept_op(","):
            values.append(self.parse_expr())
        self.expect_op(")")
        return tuple(values)

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_op(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def parse_assignment(self) -> tuple:
        name = self.expect_ident()
        self.expect_op("=")
        return (name, self.parse_expr())

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Delete(table, where)

    # -- expressions ----------------------------------------------------------
    # Precedence (low→high): OR, AND, NOT, comparison/IS/IN/LIKE/BETWEEN,
    # additive (+ - ||), multiplicative (* / %), unary minus, primary.

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        op = self.accept_op(*_COMPARISON_OPS)
        if op is not None:
            return BinaryOp(op, left, self.parse_additive())
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated)
        negated = False
        if self.current.is_keyword("NOT"):
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            self.expect_op("(")
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.expect_op(")")
            return InList(left, tuple(items), negated)
        if self.accept_keyword("LIKE"):
            return Like(left, self.parse_additive(), negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high, negated)
        if negated:
            self.fail("expected IN, LIKE or BETWEEN after NOT")
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_op("+", "-", "||")
            if op is None:
                return left
            left = BinaryOp(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self.parse_unary())

    def parse_unary(self) -> Expr:
        if self.accept_op("-"):
            operand = self.parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        self.accept_op("+")  # unary plus is a no-op
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Literal(token.value)
        if token.kind == "STRING":
            self.advance()
            return self._string_literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.is_op("*"):
            self.advance()
            return Star()
        if token.kind == "IDENT":
            return self.parse_identifier_expr()
        self.fail("expected expression")

    def _string_literal(self, raw: str) -> Literal:
        """String literals that look like ISO dates become DATE literals.

        The subset has no DATE '...' syntax; comparisons against date columns
        supply dates as plain strings, which we type eagerly here.
        """
        if len(raw) == 10 and raw[4] == "-" and raw[7] == "-":
            try:
                return Literal(datetime.date.fromisoformat(raw))
            except ValueError:
                pass
        return Literal(raw)

    def parse_case(self) -> CaseWhen:
        self.expect_keyword("CASE")
        whens = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expr()))
        if not whens:
            self.fail("CASE requires at least one WHEN")
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return CaseWhen(tuple(whens), default)

    def parse_identifier_expr(self) -> Expr:
        name = self.advance().value
        if self.current.is_op("("):
            self.advance()
            distinct = self.accept_keyword("DISTINCT")
            args: list[Expr] = []
            if not self.current.is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return FuncCall(name.upper(), tuple(args), distinct)
        if self.accept_op("."):
            if self.accept_op("*"):
                return Star(qualifier=name)
            member = self.expect_ident()
            return ColumnRef(member, name)
        return ColumnRef(name)


def parse(text: str):
    """Parse any supported statement."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


def parse_select(text: str) -> Select:
    """Parse a SELECT statement; raises ParseError on other statements."""
    statement = parse(text)
    if not isinstance(statement, Select):
        raise ParseError("expected a SELECT statement")
    return statement


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used in mappings and tests)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr
