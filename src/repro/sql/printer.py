"""Render AST nodes back to SQL text.

`to_sql` produces canonical text for the in-package dialect; the wrapper
layer (`repro.wrappers.dialects`) passes `PrintOptions` to adapt function
names and operator spellings per vendor. Round-tripping `parse(to_sql(x))`
is covered by property tests.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import PlanError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    UnionSelect,
    Update,
)


@dataclass(frozen=True)
class PrintOptions:
    """Dialect knobs for SQL generation."""

    #: map canonical function name -> vendor spelling (e.g. SUBSTR -> SUBSTRING)
    function_names: dict = field(default_factory=dict)
    #: vendor spelling of string concatenation; None keeps `||`
    concat_operator: Optional[str] = None
    #: render booleans as 1/0 instead of TRUE/FALSE
    integer_booleans: bool = False
    #: uppercase all keywords (always true here; kept for future dialects)
    uppercase_keywords: bool = True


DEFAULT_OPTIONS = PrintOptions()


def render_literal(value, options: PrintOptions = DEFAULT_OPTIONS) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        if options.integer_booleans:
            return "1" if value else "0"
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise PlanError(f"cannot render literal {value!r}")


def expr_to_sql(expr: Expr, options: PrintOptions = DEFAULT_OPTIONS) -> str:
    if isinstance(expr, Literal):
        return render_literal(expr.value, options)
    if isinstance(expr, ColumnRef):
        return f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
    if isinstance(expr, Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op == "||" and options.concat_operator:
            op = options.concat_operator
        left = expr_to_sql(expr.left, options)
        right = expr_to_sql(expr.right, options)
        return f"({left} {op} {right})"
    if isinstance(expr, UnaryOp):
        operand = expr_to_sql(expr.operand, options)
        if expr.op == "NOT":
            return f"(NOT {operand})"
        return f"(-{operand})"
    if isinstance(expr, FuncCall):
        name = options.function_names.get(expr.name, expr.name)
        inner = ", ".join(expr_to_sql(arg, options) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{name}({inner})"
    if isinstance(expr, IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expr_to_sql(expr.operand, options)} {keyword})"
    if isinstance(expr, InList):
        keyword = "NOT IN" if expr.negated else "IN"
        inner = ", ".join(expr_to_sql(item, options) for item in expr.items)
        return f"({expr_to_sql(expr.operand, options)} {keyword} ({inner}))"
    if isinstance(expr, Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"({expr_to_sql(expr.operand, options)} {keyword} "
            f"{expr_to_sql(expr.pattern, options)})"
        )
    if isinstance(expr, Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({expr_to_sql(expr.operand, options)} {keyword} "
            f"{expr_to_sql(expr.low, options)} AND {expr_to_sql(expr.high, options)})"
        )
    if isinstance(expr, CaseWhen):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(
                f"WHEN {expr_to_sql(cond, options)} THEN {expr_to_sql(value, options)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {expr_to_sql(expr.default, options)}")
        parts.append("END")
        return " ".join(parts)
    raise PlanError(f"cannot print expression {type(expr).__name__}")


def _select_item(item: SelectItem, options: PrintOptions) -> str:
    text = expr_to_sql(item.expr, options)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _table_ref(table: TableRef) -> str:
    if table.alias:
        return f"{table.name} AS {table.alias}"
    return table.name


def to_sql(statement, options: PrintOptions = DEFAULT_OPTIONS) -> str:
    """Render a statement AST to SQL text."""
    if isinstance(statement, Select):
        parts = ["SELECT"]
        if statement.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(_select_item(item, options) for item in statement.items))
        if statement.from_tables:
            parts.append("FROM")
            parts.append(", ".join(_table_ref(t) for t in statement.from_tables))
        for join in statement.joins:
            parts.append(f"{join.kind} JOIN {_table_ref(join.table)}")
            if join.condition is not None:
                parts.append(f"ON {expr_to_sql(join.condition, options)}")
        if statement.where is not None:
            parts.append(f"WHERE {expr_to_sql(statement.where, options)}")
        if statement.group_by:
            parts.append(
                "GROUP BY " + ", ".join(expr_to_sql(g, options) for g in statement.group_by)
            )
        if statement.having is not None:
            parts.append(f"HAVING {expr_to_sql(statement.having, options)}")
        if statement.order_by:
            rendered = []
            for item in statement.order_by:
                direction = "ASC" if item.ascending else "DESC"
                rendered.append(f"{expr_to_sql(item.expr, options)} {direction}")
            parts.append("ORDER BY " + ", ".join(rendered))
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
        return " ".join(parts)

    if isinstance(statement, UnionSelect):
        keyword = " UNION ALL " if statement.all else " UNION "
        text = keyword.join(to_sql(select, options) for select in statement.selects)
        if statement.order_by:
            rendered = []
            for item in statement.order_by:
                direction = "ASC" if item.ascending else "DESC"
                rendered.append(f"{expr_to_sql(item.expr, options)} {direction}")
            text += " ORDER BY " + ", ".join(rendered)
        if statement.limit is not None:
            text += f" LIMIT {statement.limit}"
        return text

    if isinstance(statement, Insert):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        rows = ", ".join(
            "(" + ", ".join(expr_to_sql(v, options) for v in row) + ")"
            for row in statement.rows
        )
        return f"INSERT INTO {statement.table}{columns} VALUES {rows}"

    if isinstance(statement, Update):
        sets = ", ".join(
            f"{name} = {expr_to_sql(value, options)}"
            for name, value in statement.assignments
        )
        text = f"UPDATE {statement.table} SET {sets}"
        if statement.where is not None:
            text += f" WHERE {expr_to_sql(statement.where, options)}"
        return text

    if isinstance(statement, Delete):
        text = f"DELETE FROM {statement.table}"
        if statement.where is not None:
            text += f" WHERE {expr_to_sql(statement.where, options)}"
        return text

    if isinstance(statement, Expr):
        return expr_to_sql(statement, options)

    raise PlanError(f"cannot print statement {type(statement).__name__}")
