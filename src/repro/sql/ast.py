"""Abstract syntax tree for the SQL subset.

All nodes are frozen dataclasses: they are hashable, comparable and safe to
share between plans. Expression rewrites therefore build new trees rather
than mutating (see `repro.sql.exprutil`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, datetime.date or None."""

    value: object

    def __str__(self):
        from repro.sql.printer import render_literal

        return render_literal(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference (`c.name` or `name`)."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self):
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expr):
    """`*` or `alias.*` in a select list, or inside COUNT(*)."""

    qualifier: Optional[str] = None

    def __str__(self):
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator; `op` is the canonical upper-case token.

    Comparison: = <> < <= > >=; arithmetic: + - * / %; logical: AND OR;
    string concatenation: ||.
    """

    op: str
    left: Expr
    right: Expr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: NOT or - (negation)."""

    op: str
    operand: Expr

    def __str__(self):
        if self.op == "NOT":
            return f"(NOT {self.operand})"
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar or aggregate function call; aggregates are resolved by name."""

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False

    def __str__(self):
        inner = ", ".join(str(arg) for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def __str__(self):
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def __str__(self):
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {keyword} ({inner}))"


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with % and _ wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False

    def __str__(self):
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand} {keyword} {self.pattern})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self):
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {keyword} {self.low} AND {self.high})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE default] END."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def __str__(self):
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr)

    def __str__(self):
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is known by inside the query."""
        return self.alias or self.name

    def __str__(self):
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class JoinClause:
    """An explicit JOIN: `kind` is INNER or LEFT; `condition` is the ON expr."""

    table: TableRef
    kind: str = "INNER"
    condition: Optional[Expr] = None

    def __str__(self):
        on = f" ON {self.condition}" if self.condition is not None else ""
        return f"{self.kind} JOIN {self.table}{on}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def __str__(self):
        return f"{self.expr} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Select:
    """A SELECT statement over base tables with optional joins/grouping."""

    items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRef, ...] = ()
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def tables(self) -> list[TableRef]:
        """All table references, FROM-list and JOIN clauses alike."""
        return list(self.from_tables) + [join.table for join in self.joins]

    def __str__(self):
        from repro.sql.printer import to_sql

        return to_sql(self)


@dataclass(frozen=True)
class UnionSelect:
    """UNION [ALL] of two or more SELECTs.

    `order_by`/`limit` apply to the whole union (lifted by the parser from
    the final branch, per standard SQL reading).
    """

    selects: Tuple[Select, ...]
    all: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    def __str__(self):
        from repro.sql.printer import to_sql

        return to_sql(self)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


#: Convenience constructors used heavily by the planner and tests.


def col(ref: str) -> ColumnRef:
    """Build a ColumnRef from `"name"` or `"qualifier.name"`."""
    if "." in ref:
        qualifier, name = ref.rsplit(".", 1)
        return ColumnRef(name, qualifier)
    return ColumnRef(ref)


def lit(value) -> Literal:
    return Literal(value)


def eq(left: Expr, right: Expr) -> BinaryOp:
    return BinaryOp("=", left, right)


def and_all(exprs: Sequence[Expr]) -> Optional[Expr]:
    """Conjoin a sequence of predicates; returns None for an empty sequence."""
    result = None
    for expr in exprs:
        result = expr if result is None else BinaryOp("AND", result, expr)
    return result
