"""Compile AST expressions into row-evaluating closures.

`compile_expr(expr, schema)` returns a `row -> value` callable bound to
column positions at compile time, so per-row evaluation does no name
resolution. NULL follows SQL three-valued logic: comparisons and arithmetic
over NULL yield NULL, AND/OR use Kleene logic, and `compile_predicate` maps
the final UNKNOWN to False (the WHERE-clause rule).
"""

from __future__ import annotations

import operator
import re
from functools import lru_cache
from typing import Callable

from repro.common.errors import PlanError, TypeMismatchError
from repro.common.schema import RelSchema
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.functions import call_scalar, is_aggregate_name

_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}


def compile_expr(expr: Expr, schema: RelSchema) -> Callable:
    """Compile `expr` against `schema` into a `row -> value` closure."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        index = schema.index_of(expr.name, expr.qualifier)
        return lambda row: row[index]

    if isinstance(expr, Star):
        raise PlanError("* is only valid in a select list or COUNT(*)")

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, schema)

    if isinstance(expr, UnaryOp):
        inner = compile_expr(expr.operand, schema)
        if expr.op == "NOT":
            def evaluate_not(row):
                value = inner(row)
                return None if value is None else not value

            return evaluate_not
        if expr.op == "-":
            def evaluate_neg(row):
                value = inner(row)
                return None if value is None else -value

            return evaluate_neg
        raise PlanError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, FuncCall):
        if is_aggregate_name(expr.name):
            raise PlanError(
                f"aggregate {expr.name} outside of an Aggregate operator"
            )
        arg_fns = [compile_expr(arg, schema) for arg in expr.args]
        name = expr.name

        def evaluate_call(row):
            return call_scalar(name, [fn(row) for fn in arg_fns])

        return evaluate_call

    if isinstance(expr, IsNull):
        inner = compile_expr(expr.operand, schema)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    if isinstance(expr, InList):
        inner = compile_expr(expr.operand, schema)
        item_fns = [compile_expr(item, schema) for item in expr.items]
        negated = expr.negated

        def evaluate_in(row):
            value = inner(row)
            if value is None:
                return None
            found = False
            saw_null = False
            for fn in item_fns:
                item = fn(row)
                if item is None:
                    saw_null = True
                elif _values_equal(value, item):
                    found = True
                    break
            if found:
                return not negated
            if saw_null:
                return None
            return negated

        return evaluate_in

    if isinstance(expr, Like):
        inner = compile_expr(expr.operand, schema)
        pattern_fn = compile_expr(expr.pattern, schema)
        negated = expr.negated

        def evaluate_like(row):
            value = inner(row)
            pattern = pattern_fn(row)
            if value is None or pattern is None:
                return None
            matched = _like_regex(pattern).match(value) is not None
            return matched != negated

        return evaluate_like

    if isinstance(expr, Between):
        inner = compile_expr(expr.operand, schema)
        low_fn = compile_expr(expr.low, schema)
        high_fn = compile_expr(expr.high, schema)
        negated = expr.negated

        def evaluate_between(row):
            value = inner(row)
            low = low_fn(row)
            high = high_fn(row)
            if value is None or low is None or high is None:
                return None
            result = low <= value <= high
            return result != negated

        return evaluate_between

    if isinstance(expr, CaseWhen):
        when_fns = [
            (compile_expr(cond, schema), compile_expr(value, schema))
            for cond, value in expr.whens
        ]
        default_fn = (
            compile_expr(expr.default, schema) if expr.default is not None else None
        )

        def evaluate_case(row):
            for cond_fn, value_fn in when_fns:
                if cond_fn(row):
                    return value_fn(row)
            return default_fn(row) if default_fn is not None else None

        return evaluate_case

    raise PlanError(f"cannot compile expression node {type(expr).__name__}")


def compile_predicate(expr: Expr, schema: RelSchema) -> Callable:
    """Compile a boolean expression, mapping NULL (UNKNOWN) to False."""
    inner = compile_expr(expr, schema)

    def predicate(row) -> bool:
        return bool(inner(row))

    return predicate


def _compile_binary(expr: BinaryOp, schema: RelSchema) -> Callable:
    op = expr.op
    if op in ("AND", "OR"):
        left = compile_expr(expr.left, schema)
        right = compile_expr(expr.right, schema)
        if op == "AND":
            def evaluate_and(row):
                lhs = left(row)
                if lhs is False:
                    return False
                rhs = right(row)
                if rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return bool(lhs) and bool(rhs)

            return evaluate_and

        def evaluate_or(row):
            lhs = left(row)
            if lhs is True or (lhs is not None and lhs):
                return True
            rhs = right(row)
            if rhs is not None and rhs:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return evaluate_or

    left = compile_expr(expr.left, schema)
    right = compile_expr(expr.right, schema)

    if op in _COMPARATORS:
        compare = _COMPARATORS[op]

        def evaluate_cmp(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            lhs, rhs = _align_numeric(lhs, rhs)
            try:
                return compare(lhs, rhs)
            except TypeError as exc:
                raise TypeMismatchError(
                    f"cannot compare {lhs!r} with {rhs!r}"
                ) from exc

        return evaluate_cmp

    if op == "||":
        def evaluate_concat(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)

        return evaluate_concat

    if op == "/":
        def evaluate_div(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if rhs == 0:
                return None  # SQL engines vary; we take the forgiving path
            result = lhs / rhs
            return result

        return evaluate_div

    if op in _ARITHMETIC:
        arith = _ARITHMETIC[op]

        def evaluate_arith(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return arith(lhs, rhs)
            except TypeError as exc:
                raise TypeMismatchError(
                    f"bad operands for {op}: {lhs!r}, {rhs!r}"
                ) from exc

        return evaluate_arith

    raise PlanError(f"unknown binary operator {op!r}")


def _values_equal(a, b) -> bool:
    a, b = _align_numeric(a, b)
    try:
        return a == b
    except TypeError:
        return False


def _align_numeric(a, b):
    """Allow int/float cross-comparison while keeping bool distinct."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a, b
    if isinstance(a, int) and isinstance(b, float):
        return float(a), b
    if isinstance(a, float) and isinstance(b, int):
        return a, float(b)
    return a, b


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)
