"""Hand-rolled SQL lexer.

Produces a flat list of `Token`s; the parser indexes into it. Keywords are
case-insensitive; identifiers preserve their original case. String literals
use single quotes with `''` as the escape for a literal quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ParseError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "JOIN", "INNER", "LEFT", "OUTER", "ON", "ASC", "DESC", "CASE", "WHEN",
    "THEN", "ELSE", "END", "TRUE", "FALSE", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "UNION", "ALL", "CROSS",
}

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPS = "=<>+-*/%(),."


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    value: object
    position: int
    #: 1-based source location of the token's first character. Defaults keep
    #: hand-built tokens (tests, tools) valid; `tokenize` always fills them.
    line: int = 1
    column: int = 1

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.value in words

    def is_op(self, *ops: str) -> bool:
        return self.kind == "OP" and self.value in ops

    def __str__(self):
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> list[Token]:
    """Lex `text` into tokens, ending with an EOF token.

    Every token records its starting offset plus 1-based line/column, so
    parse errors and static-analysis diagnostics can point at the source.
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    line, line_start = 1, 0

    def advance_lines(start: int, end: int) -> None:
        """Account for newlines inside a consumed slice (strings, comments)."""
        nonlocal line, line_start
        idx = text.find("\n", start, end)
        while idx >= 0:
            line += 1
            line_start = idx + 1
            idx = text.find("\n", idx + 1, end)

    def emit(kind: str, value, start: int) -> None:
        tokens.append(Token(kind, value, start, line, start - line_start + 1))

    while i < n:
        ch = text[i]
        if ch.isspace():
            if ch == "\n":
                line += 1
                line_start = i + 1
            i += 1
            continue
        if text.startswith("--", i):  # line comment
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            if end >= 0:
                line += 1
                line_start = end + 1
            continue
        if ch == "'":
            start = i
            value, i = _lex_string(text, i)
            emit("STRING", value, start)
            advance_lines(start, i)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            value, i = _lex_number(text, i)
            emit("NUMBER", value, start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                emit("KEYWORD", upper, start)
            else:
                emit("IDENT", word, start)
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            canonical = "<>" if two == "!=" else two
            emit("OP", canonical, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            emit("OP", ch, i)
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i, text=text)
    emit("EOF", None, n)
    return tokens


def _lex_string(text: str, start: int) -> tuple[str, int]:
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start, text=text)


def _lex_number(text: str, start: int):
    i = start
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # `1.` followed by a non-digit is "1" then ".": stop before the dot.
            if i + 1 >= n or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    raw = text[start:i]
    value = float(raw) if seen_dot else int(raw)
    return value, i
