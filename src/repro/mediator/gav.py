"""Global-as-view mediation: virtual tables defined over source tables.

`MediatedSchema` holds view definitions (SELECT text or ASTs) over global
federation tables — or over other mediated tables, which unfold
recursively. `GavMediator` binds user queries against the virtual schema
and unfolds every virtual scan into its definition plan wrapped in a
`LogicalAlias`, producing a plan the federated planner can optimize and
decompose as usual. Draper's §5 "views as a central metaphor" is exactly
this machinery: factor the integration into named, reusable pieces.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import PlanError, SchemaError
from repro.common.schema import RelSchema
from repro.engine.logical import LogicalAlias, LogicalPlan, LogicalScan
from repro.engine.planner import bind_select
from repro.sql.ast import Select
from repro.sql.parser import parse_select

MAX_UNFOLD_DEPTH = 16


class MediatedSchema:
    """A namespace of virtual table definitions."""

    def __init__(self):
        self._views: dict[str, Select] = {}

    def define(self, name: str, definition: Union[str, Select]) -> None:
        """Define (or redefine) virtual table `name`."""
        if isinstance(definition, str):
            definition = parse_select(definition)
        self._views[name.lower()] = definition

    def drop(self, name: str) -> None:
        if name.lower() not in self._views:
            raise SchemaError(f"no mediated table {name!r}")
        del self._views[name.lower()]

    def definition(self, name: str) -> Optional[Select]:
        return self._views.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._views)

    def has(self, name: str) -> bool:
        return name.lower() in self._views


class GavMediator:
    """Reformulates mediated-schema queries into source-level plans.

    `base_resolver` resolves non-virtual tables (typically a
    `FederationCatalog`); the mediator itself implements the binder's
    TableResolver protocol, so virtual and base tables can be mixed freely
    in one query.
    """

    def __init__(self, schema: MediatedSchema, base_resolver):
        self.schema = schema
        self.base_resolver = base_resolver
        self._resolving: set[str] = set()

    # -- TableResolver protocol ----------------------------------------------------

    def resolve_table(self, name: str) -> RelSchema:
        definition = self.schema.definition(name)
        if definition is None:
            return self.base_resolver.resolve_table(name)
        return self._definition_plan(name, depth=0).schema

    # -- reformulation ---------------------------------------------------------------

    def expand(self, query: Union[str, Select, LogicalPlan]) -> LogicalPlan:
        """Bind `query` against the virtual schema and unfold every view."""
        if isinstance(query, str):
            query = parse_select(query)
        if isinstance(query, Select):
            query = bind_select(query, self)
        return self._unfold(query, depth=0)

    def _unfold(self, plan: LogicalPlan, depth: int) -> LogicalPlan:
        if depth > MAX_UNFOLD_DEPTH:
            raise PlanError("view definitions nest too deeply (cycle?)")
        if isinstance(plan, LogicalScan) and self.schema.has(plan.table_name):
            definition = self._definition_plan(plan.table_name, depth + 1)
            return LogicalAlias(definition, plan.binding)
        children = [self._unfold(child, depth) for child in plan.children]
        return plan.with_children(children) if children else plan

    def _definition_plan(self, name: str, depth: int) -> LogicalPlan:
        key = name.lower()
        if key in self._resolving:
            raise PlanError(f"cyclic view definition involving {name!r}")
        definition = self.schema.definition(name)
        self._resolving.add(key)
        try:
            bound = bind_select(definition, self)
            return self._unfold(bound, depth)
        finally:
            self._resolving.discard(key)
