"""Generated update methods: view updates compiled into EAI sagas.

Rosenthal (§7): programmers hand-code Update methods in 3GL+SQL; "Given
the choices, the update method should be generated automatically." Carey
(§4): updates through a virtual view are really business processes needing
compensation. `UpdateSagaGenerator` combines both: given a GAV view whose
columns have direct base-column lineage, an `UPDATE view SET … WHERE key =
…` request compiles into a `ProcessDefinition` — one step per underlying
source table, each with an automatically generated compensation that
restores the previous rows if a later step fails.

Key translation uses the view's join graph: equi-join conditions induce an
equivalence class of columns carrying the key value, so a view keyed on
`cust_id` (= crm `c.id`) updates sales rows through `o.cust_id` without
any hand-written mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PlanError
from repro.eai.process import ProcessDefinition, Step
from repro.sql.ast import ColumnRef, Select
from repro.sql.exprutil import equi_join_sides, split_conjuncts


@dataclass(frozen=True)
class _Lineage:
    """Where one view column comes from: a base table binding + column."""

    binding: str  # table alias inside the view definition
    table: str  # global table name
    column: str  # base column name


class UpdateSagaGenerator:
    """Compiles view updates into compensating process definitions.

    Supported views: single SELECT over base tables where every exposed
    column is a bare column reference (the common "single view of X"
    shape). Computed columns have no unique inverse and are rejected —
    the honest limitation of view updating.
    """

    def __init__(self, mediated_schema, catalog, broker=None):
        self.schema = mediated_schema
        self.catalog = catalog
        #: when given, every step (and every compensation) that mutates a
        #: source table publishes `table.<name>.changed` — the same event
        #: `ChangeNotifier` emits — so view staleness and mediator-cache
        #: invalidation react to writes through this path immediately,
        #: without waiting for a notifier poll sweep.
        self.broker = broker

    # -- lineage analysis ---------------------------------------------------------

    def lineage_of(self, view_name: str) -> dict:
        """Map each view output column (lower) to its `_Lineage`."""
        definition = self.schema.definition(view_name)
        if definition is None:
            raise PlanError(f"no mediated view {view_name!r}")
        if not isinstance(definition, Select):
            raise PlanError("only plain SELECT views are updatable")
        binding_to_table = {
            ref.binding.lower(): ref.name for ref in definition.tables()
        }
        lineage: dict = {}
        for item in definition.items:
            if not isinstance(item.expr, ColumnRef):
                continue  # computed column: not updatable
            binding = (item.expr.qualifier or "").lower()
            if binding not in binding_to_table:
                # unqualified ref: resolvable only with a single table
                if len(binding_to_table) == 1:
                    binding = next(iter(binding_to_table))
                else:
                    continue
            lineage[item.output_name.lower()] = _Lineage(
                binding, binding_to_table[binding], item.expr.name
            )
        return lineage

    def _key_class(self, view_name: str, key_lineage: _Lineage) -> dict:
        """binding -> column carrying the key value, via equi-join closure."""
        definition = self.schema.definition(view_name)
        conjuncts = []
        if definition.where is not None:
            conjuncts.extend(split_conjuncts(definition.where))
        for join in definition.joins:
            if join.condition is not None:
                conjuncts.extend(split_conjuncts(join.condition))
        # union-find over (binding, column) pairs connected by equi joins
        parent: dict = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for conjunct in conjuncts:
            sides = equi_join_sides(conjunct)
            if sides is None:
                continue
            a, b = sides
            union(
                ((a.qualifier or "").lower(), a.name.lower()),
                ((b.qualifier or "").lower(), b.name.lower()),
            )
        key_node = (key_lineage.binding, key_lineage.column.lower())
        key_root = find(key_node)
        out = {key_lineage.binding: key_lineage.column}
        for node in list(parent):
            if find(node) == key_root:
                binding, column = node
                out.setdefault(binding, column)
        return out

    # -- saga generation --------------------------------------------------------------

    def generate(
        self,
        view_name: str,
        assignments: dict,
        key_column: str,
        key_value,
    ) -> ProcessDefinition:
        """Build the saga for `UPDATE view SET assignments WHERE key = value`."""
        lineage = self.lineage_of(view_name)
        key_lineage = lineage.get(key_column.lower())
        if key_lineage is None:
            raise PlanError(
                f"view {view_name!r} key column {key_column!r} has no base lineage"
            )
        key_by_binding = self._key_class(view_name, key_lineage)

        # group assignments by owning base table
        per_table: dict = {}
        for view_column, new_value in assignments.items():
            target = lineage.get(view_column.lower())
            if target is None:
                raise PlanError(
                    f"view column {view_column!r} is computed or unknown; "
                    f"its update cannot be generated"
                )
            per_table.setdefault(target.binding, []).append((target, new_value))

        steps = []
        for binding, targets in sorted(per_table.items()):
            table_name = targets[0][0].table
            local_key = key_by_binding.get(binding)
            if local_key is None:
                raise PlanError(
                    f"table {table_name!r} shares no join key with "
                    f"{key_column!r}; update cannot be routed"
                )
            steps.append(
                self._table_step(table_name, local_key, key_value, targets)
            )
        return ProcessDefinition(f"update_{view_name}", steps)

    def _notify_changed(self, table_name: str, table) -> None:
        if self.broker is not None:
            self.broker.publish(
                f"table.{table_name.lower()}.changed",
                {"table": table_name.lower(), "version": table.version},
            )

    def _table_step(self, table_name, local_key, key_value, targets) -> Step:
        entry = self.catalog.entry(table_name)
        source = entry.source
        db = getattr(source, "db", None)
        if db is None:
            raise PlanError(
                f"source {source.name!r} is not updatable (no database handle)"
            )
        table = db.table(entry.local_name)
        key_position = table.schema.index_of(local_key)
        set_positions = [
            (table.schema.index_of(target.column), value)
            for target, value in targets
        ]
        saved_key = f"saved_{table_name}"

        def action(context: dict):
            old_rows = [
                row for row in table.rows() if row[key_position] == key_value
            ]
            context[saved_key] = old_rows

            def updater(row):
                new_row = list(row)
                for position, value in set_positions:
                    new_row[position] = value
                return new_row

            changed = table.update_where(
                lambda row: row[key_position] == key_value, updater
            )
            if changed:
                self._notify_changed(table_name, table)
            return changed

        def compensate(context: dict):
            # Matching rows keep their heap slots across update_where, so the
            # saved images restore positionally in the same scan order.
            saved = context.get(saved_key, [])
            if not saved:
                return
            iterator = iter(saved)
            table.update_where(
                lambda row: row[key_position] == key_value,
                lambda _row: next(iterator),
            )
            self._notify_changed(table_name, table)

        columns = ", ".join(target.column for target, _ in targets)

        return Step(
            name=f"update {table_name}({columns})",
            action=action,
            compensate=compensate,
        )
