"""Local-as-view reformulation: the MiniCon algorithm.

Each source table is described as a view over a conceptual (mediated)
schema. Answering a query then requires rewriting it using only the views.
`minicon_rewritings` implements MiniCon (Pottinger & Halevy, VLDB 2000):

1. build MiniCon Descriptions (MCDs) — for each query subgoal and view,
   the least restrictive way the view can cover a *closed* set of subgoals
   (closed: any query variable mapped onto a view existential drags every
   subgoal it appears in into the same MCD);
2. combine MCDs whose subgoal sets partition the query's subgoals into
   candidate rewritings;
3. soundness gate: each candidate is *verified* by expanding the views and
   checking containment in the original query, so every returned rewriting
   is guaranteed correct even for corner cases of the construction.

`LavMediator` executes the union of rewritings against a federation
catalog whose global tables are the view relations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.common.errors import ReformulationError
from repro.mediator.cq import (
    Atom,
    ConjunctiveQuery,
    Var,
    is_contained_in,
    parse_cq,
)


@dataclass(frozen=True)
class LavMapping:
    """One source relation described as a view over the conceptual schema."""

    view: ConjunctiveQuery  # head predicate = the source relation

    @classmethod
    def parse(cls, text: str) -> "LavMapping":
        return cls(parse_cq(text))

    @property
    def name(self) -> str:
        return self.view.name


@dataclass
class _MCD:
    """A MiniCon Description: `view` covers query subgoals `covered`."""

    view: ConjunctiveQuery  # renamed-apart copy
    view_index: int
    covered: frozenset  # indexes of covered query subgoals
    phi: dict  # query Var -> view term (Var or constant)
    theta: dict  # view Var -> constant forced by the query


def minicon_rewritings(
    query: ConjunctiveQuery,
    mappings: Sequence[LavMapping],
    max_rewritings: int = 64,
    verify: bool = True,
) -> list[ConjunctiveQuery]:
    """All (verified) conjunctive rewritings of `query` over the views."""
    mcds: list[_MCD] = []
    for view_index, mapping in enumerate(mappings):
        view = mapping.view.rename_apart(f"_v{view_index}")
        for goal_index in range(len(query.body)):
            mcds.extend(_make_mcds(query, view, view_index, goal_index))
    # Deduplicate MCDs covering the same goals with the same mappings.
    unique: dict = {}
    for mcd in mcds:
        key = (
            mcd.view_index,
            mcd.covered,
            tuple(sorted((v.name, repr(t)) for v, t in mcd.phi.items())),
        )
        unique.setdefault(key, mcd)
    mcds = list(unique.values())

    rewritings: list[ConjunctiveQuery] = []
    seen: set = set()
    all_goals = frozenset(range(len(query.body)))
    for combo in _partitions(mcds, all_goals):
        candidate = _combine(query, combo)
        if candidate is None:
            continue
        key = repr(candidate)
        if key in seen:
            continue
        seen.add(key)
        if verify and not _verify(candidate, query, mappings):
            continue
        rewritings.append(candidate)
        if len(rewritings) >= max_rewritings:
            break
    return rewritings


class LavMediator:
    """Answer conceptual-schema queries by executing MiniCon rewritings.

    `executor` maps a rewriting (a CQ over view predicates) to a set of
    rows — typically `FederatedEngine`-backed via `cq_to_select`. Results
    of all rewritings are unioned under set semantics (certain answers come
    from the union of contained rewritings).
    """

    def __init__(self, mappings: Sequence[LavMapping]):
        self.mappings = list(mappings)

    def rewrite(self, query: Union[str, ConjunctiveQuery]) -> list[ConjunctiveQuery]:
        if isinstance(query, str):
            query = parse_cq(query)
        return minicon_rewritings(query, self.mappings)

    def answer_with_engine(
        self,
        query: Union[str, ConjunctiveQuery],
        engine,
        column_names: dict,
    ) -> set:
        """Answer a conceptual query by running rewritings on a SQL engine.

        The LAV views are ordinary (federated or local) tables; each MiniCon
        rewriting is compiled to SQL via `cq_to_select` and the union of all
        rewriting results is returned as a set of tuples (certain answers).
        `column_names` maps each view table to its ordered column list.
        """
        if isinstance(query, str):
            query = parse_cq(query)
        rewritings = minicon_rewritings(query, self.mappings)
        if not rewritings:
            raise ReformulationError(
                f"query {query.name!r} has no rewriting over the available views"
            )
        answers: set = set()
        for rewriting in rewritings:
            sql = cq_to_select(rewriting, column_names)
            result = engine.query(sql)
            relation = result.relation if hasattr(result, "relation") else result
            answers |= set(relation.rows)
        return answers

    def answer(self, query: Union[str, ConjunctiveQuery], view_instances: dict) -> set:
        """Evaluate all rewritings over materialized view instances."""
        from repro.mediator.cq import evaluate

        if isinstance(query, str):
            query = parse_cq(query)
        rewritings = minicon_rewritings(query, self.mappings)
        if not rewritings:
            raise ReformulationError(
                f"query {query.name!r} has no rewriting over the available views"
            )
        answers: set = set()
        for rewriting in rewritings:
            answers |= evaluate(rewriting, view_instances)
        return answers


# ---------------------------------------------------------------------------
# MCD construction
# ---------------------------------------------------------------------------


def _make_mcds(query, view, view_index, seed_goal: int) -> list[_MCD]:
    """All minimal MCDs whose coverage includes query subgoal `seed_goal`."""
    out: list[_MCD] = []
    seed = query.body[seed_goal]
    for view_atom in view.body:
        if view_atom.predicate != seed.predicate or len(view_atom.terms) != len(seed.terms):
            continue
        state = _try_extend({}, {}, seed, view_atom, view)
        if state is None:
            continue
        phi, theta = state
        closed = _close(query, view, {seed_goal}, phi, theta)
        for covered, phi2, theta2 in closed:
            if covered and min(covered) == seed_goal:  # avoid duplicates
                if _head_condition(query, view, phi2):
                    out.append(
                        _MCD(view, view_index, frozenset(covered), phi2, theta2)
                    )
    return out


def _try_extend(phi: dict, theta: dict, goal: Atom, view_atom: Atom, view):
    """Unify one query subgoal with one view atom, extending (phi, theta)."""
    phi = dict(phi)
    theta = dict(theta)
    head_vars = set(view.head_vars())
    for q_term, v_term in zip(goal.terms, view_atom.terms):
        if isinstance(q_term, Var):
            existing = phi.get(q_term)
            if existing is None:
                phi[q_term] = v_term
            elif existing != v_term:
                return None
        else:  # query constant
            if isinstance(v_term, Var):
                if v_term not in head_vars:
                    return None  # cannot filter an existential view variable
                bound = theta.get(v_term)
                if bound is None:
                    theta[v_term] = q_term
                elif bound != q_term:
                    return None
            elif v_term != q_term:
                return None
    return phi, theta


def _close(query, view, covered: set, phi: dict, theta: dict):
    """Enforce MiniCon property C2 by closing over existential mappings.

    Returns a list of (covered, phi, theta) alternatives (branching over
    which view atom absorbs each dragged-in subgoal).
    """
    head_vars = set(view.head_vars())
    pending = [
        (set(covered), dict(phi), dict(theta)),
    ]
    results = []
    while pending:
        covered_set, phi_now, theta_now = pending.pop()
        violation = None
        for q_var, v_term in phi_now.items():
            if isinstance(v_term, Var) and v_term not in head_vars:
                for goal_index, goal in enumerate(query.body):
                    if goal_index in covered_set:
                        continue
                    if q_var in goal.variables():
                        violation = goal_index
                        break
            if violation is not None:
                break
        if violation is None:
            results.append((frozenset(covered_set), phi_now, theta_now))
            continue
        goal = query.body[violation]
        for view_atom in view.body:
            if view_atom.predicate != goal.predicate or len(view_atom.terms) != len(
                goal.terms
            ):
                continue
            state = _try_extend(phi_now, theta_now, goal, view_atom, view)
            if state is None:
                continue
            phi2, theta2 = state
            pending.append((covered_set | {violation}, phi2, theta2))
    return results


def _head_condition(query, view, phi: dict) -> bool:
    """MiniCon property C1: covered query head vars map to view head vars."""
    head_vars = set(view.head_vars())
    for q_var in query.head_vars():
        v_term = phi.get(q_var)
        if v_term is None:
            continue  # not covered by this MCD
        if isinstance(v_term, Var) and v_term not in head_vars:
            return False
    return True


# ---------------------------------------------------------------------------
# Combination
# ---------------------------------------------------------------------------


def _partitions(mcds: list, all_goals: frozenset):
    """Yield MCD combinations whose coverages partition `all_goals`."""

    def recurse(remaining: frozenset, chosen: list, start: int):
        if not remaining:
            yield list(chosen)
            return
        target = min(remaining)
        for index in range(start, len(mcds)):
            mcd = mcds[index]
            if target not in mcd.covered:
                continue
            if not mcd.covered <= remaining:
                continue  # MiniCon combines pairwise-disjoint MCDs only
            chosen.append(mcd)
            yield from recurse(remaining - mcd.covered, chosen, 0)
            chosen.pop()

    yield from recurse(all_goals, [], 0)


_fresh_counter = itertools.count()


def _combine(query, combo: list) -> Optional[ConjunctiveQuery]:
    """Build the rewriting CQ from one MCD combination."""
    # Union-find over query variables equated by mapping onto the same
    # distinguished view variable within one MCD.
    parent: dict = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for mcd in combo:
        by_view_var: dict = {}
        for q_var, v_term in mcd.phi.items():
            if isinstance(v_term, Var):
                by_view_var.setdefault(v_term, []).append(q_var)
        for group in by_view_var.values():
            for other in group[1:]:
                union(group[0], other)

    # Constants forced on query variables (query var mapped to a view
    # constant or a theta-bound head var).
    const_of: dict = {}
    for mcd in combo:
        for q_var, v_term in mcd.phi.items():
            value = None
            if not isinstance(v_term, Var):
                value = v_term
            elif v_term in mcd.theta:
                value = mcd.theta[v_term]
            if value is not None:
                root = find(q_var)
                if root in const_of and const_of[root] != value:
                    return None
                const_of[root] = value

    def rep(q_var):
        root = find(q_var)
        return const_of.get(root, root)

    body: list[Atom] = []
    for mcd in combo:
        inverse: dict = {}
        for q_var, v_term in mcd.phi.items():
            if isinstance(v_term, Var):
                inverse.setdefault(v_term, q_var)
        args = []
        for v_term in mcd.view.head:
            if not isinstance(v_term, Var):
                args.append(v_term)
            elif v_term in inverse:
                args.append(rep(inverse[v_term]))
            elif v_term in mcd.theta:
                args.append(mcd.theta[v_term])
            else:
                args.append(Var(f"_F{next(_fresh_counter)}"))
        body.append(Atom(mcd.view.name, tuple(args)))

    # Two MCDs can contribute the identical view atom; keep one (set semantics).
    body = list(dict.fromkeys(body))
    head = tuple(
        rep(term) if isinstance(term, Var) else term for term in query.head
    )
    # Safety: all head vars must survive in the body.
    body_vars = {var for atom in body for var in atom.variables()}
    for term in head:
        if isinstance(term, Var) and term not in body_vars:
            return None
    return ConjunctiveQuery(f"{query.name}_rw", head, tuple(body))


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


def _verify(candidate, query, mappings: Sequence[LavMapping]) -> bool:
    """Expand the views inside `candidate` and check containment in `query`."""
    by_name = {mapping.name: mapping.view for mapping in mappings}
    expanded_body: list[Atom] = []
    for index, atom in enumerate(candidate.body):
        view = by_name.get(atom.predicate)
        if view is None:
            return False
        view = view.rename_apart(f"_e{index}")
        if len(view.head) != len(atom.terms):
            return False
        substitution = {}
        equalities: list[tuple] = []
        for v_term, arg in zip(view.head, atom.terms):
            if isinstance(v_term, Var):
                if v_term in substitution and substitution[v_term] != arg:
                    equalities.append((substitution[v_term], arg))
                else:
                    substitution[v_term] = arg
            elif v_term != arg:
                if isinstance(arg, Var):
                    substitution_arg_equalities = (v_term, arg)
                    equalities.append(substitution_arg_equalities)
                else:
                    return False
        expanded = view.substitute(substitution)
        if equalities:
            # Apply equalities by substituting vars with their partner.
            eq_map = {}
            for a, b in equalities:
                if isinstance(b, Var):
                    eq_map[b] = a
                elif isinstance(a, Var):
                    eq_map[a] = b
                elif a != b:
                    return False
            expanded = expanded.substitute(eq_map)
        expanded_body.extend(expanded.body)
    expansion = ConjunctiveQuery(candidate.name, candidate.head, tuple(expanded_body))
    return is_contained_in(expansion, query)


def cq_to_select(cq: ConjunctiveQuery, column_names: dict) -> str:
    """Render a rewriting as SQL over the view tables.

    `column_names` maps each view predicate to its ordered column names.
    Used to execute LAV rewritings on the federated engine.
    """
    from repro.sql.printer import render_literal

    aliases = []
    where: list[str] = []
    select: list[str] = []
    var_sites: dict = {}
    for index, atom in enumerate(cq.body):
        alias = f"b{index}"
        aliases.append(f"{atom.predicate} AS {alias}")
        columns = column_names[atom.predicate]
        for column, term in zip(columns, atom.terms):
            site = f"{alias}.{column}"
            if isinstance(term, Var):
                if term in var_sites:
                    where.append(f"{var_sites[term]} = {site}")
                else:
                    var_sites[term] = site
            else:
                where.append(f"{site} = {render_literal(term)}")
    for position, term in enumerate(cq.head):
        if isinstance(term, Var):
            select.append(f"{var_sites[term]} AS c{position}")
        else:
            select.append(f"{render_literal(term)} AS c{position}")
    sql = f"SELECT DISTINCT {', '.join(select)} FROM {', '.join(aliases)}"
    if where:
        sql += " WHERE " + " AND ".join(where)
    return sql
