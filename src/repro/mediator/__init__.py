"""The mediator: virtual schemas and query reformulation.

Two classical mapping styles from the panel's introduction ("building a
virtual schema … query processing would begin by reformulating a query
posed over the virtual schema into queries over the data sources"):

* **GAV** (global-as-view): each mediated table is defined as a query over
  the global source tables; reformulation is view unfolding
  (`repro.mediator.gav`).
* **LAV** (local-as-view): each *source* table is described as a view over
  a conceptual schema; reformulation is answering-queries-using-views, for
  which we implement the MiniCon algorithm over conjunctive queries
  (`repro.mediator.cq`, `repro.mediator.lav`).
"""

from repro.mediator.gav import GavMediator, MediatedSchema
from repro.mediator.cq import Atom, ConjunctiveQuery, canonical_database, is_contained_in
from repro.mediator.lav import LavMediator, LavMapping, minicon_rewritings
from repro.mediator.updates import UpdateSagaGenerator

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "GavMediator",
    "LavMapping",
    "LavMediator",
    "MediatedSchema",
    "UpdateSagaGenerator",
    "canonical_database",
    "is_contained_in",
    "minicon_rewritings",
]
