"""Conjunctive queries: representation, evaluation, containment.

This is the formal substrate for LAV reformulation. Queries are Datalog
rules `q(X, Y) :- r(X, Z), s(Z, Y, 'const')`: upper-case identifiers are
variables, everything else is a constant. Containment is decided with the
classical canonical-database (frozen query) construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.common.errors import EIIError


class CQSyntaxError(EIIError):
    """Raised on malformed Datalog rule text."""


@dataclass(frozen=True)
class Var:
    """A query variable (upper-case-initial identifier in rule text)."""

    name: str

    def __repr__(self):
        return self.name


Term = Union[Var, int, float, str, bool]


@dataclass(frozen=True)
class Atom:
    """One body atom: predicate applied to terms."""

    predicate: str
    terms: tuple

    def __repr__(self):
        inner = ", ".join(_render_term(t) for t in self.terms)
        return f"{self.predicate}({inner})"

    def variables(self) -> list[Var]:
        return [term for term in self.terms if isinstance(term, Var)]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """`head_name(head_terms) :- body`. Bag vs set semantics is set."""

    name: str
    head: tuple
    body: tuple

    def __repr__(self):
        head_inner = ", ".join(_render_term(t) for t in self.head)
        body_text = ", ".join(repr(atom) for atom in self.body)
        return f"{self.name}({head_inner}) :- {body_text}"

    def head_vars(self) -> list[Var]:
        return [term for term in self.head if isinstance(term, Var)]

    def variables(self) -> list[Var]:
        seen: dict[Var, None] = {}
        for term in self.head:
            if isinstance(term, Var):
                seen.setdefault(term)
        for atom in self.body:
            for var in atom.variables():
                seen.setdefault(var)
        return list(seen)

    def existential_vars(self) -> list[Var]:
        head = set(self.head_vars())
        return [var for var in self.variables() if var not in head]

    def is_safe(self) -> bool:
        """Every head variable appears in the body (range restriction)."""
        body_vars = {var for atom in self.body for var in atom.variables()}
        return all(var in body_vars for var in self.head_vars())

    def rename_apart(self, suffix: str) -> "ConjunctiveQuery":
        """Fresh-rename every variable by appending `suffix`."""
        mapping = {var: Var(f"{var.name}{suffix}") for var in self.variables()}
        return self.substitute(mapping)

    def substitute(self, mapping: dict) -> "ConjunctiveQuery":
        def sub(term):
            return mapping.get(term, term) if isinstance(term, Var) else term

        return ConjunctiveQuery(
            self.name,
            tuple(sub(term) for term in self.head),
            tuple(
                Atom(atom.predicate, tuple(sub(term) for term in atom.terms))
                for atom in self.body
            ),
        )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse `q(X, Y) :- r(X, Z), s(Z, Y)` into a ConjunctiveQuery."""
    if ":-" not in text:
        raise CQSyntaxError(f"rule needs ':-': {text!r}")
    head_text, body_text = text.split(":-", 1)
    head_match = _ATOM_RE.fullmatch(head_text)
    if head_match is None:
        raise CQSyntaxError(f"bad head: {head_text!r}")
    name = head_match.group(1)
    head = _parse_terms(head_match.group(2))
    body: list[Atom] = []
    for piece in _split_atoms(body_text):
        match = _ATOM_RE.fullmatch(piece)
        if match is None:
            raise CQSyntaxError(f"bad atom: {piece!r}")
        body.append(Atom(match.group(1), _parse_terms(match.group(2))))
    if not body:
        raise CQSyntaxError("empty body")
    return ConjunctiveQuery(name, head, tuple(body))


def _split_atoms(text: str) -> list[str]:
    """Split the body on commas that are not inside parentheses."""
    pieces: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        pieces.append(tail)
    return [piece.strip() for piece in pieces if piece.strip()]


def _parse_terms(text: str) -> tuple:
    terms: list = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        terms.append(_parse_term(raw))
    return tuple(terms)


def _parse_term(raw: str):
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if raw[0].isupper():
        return Var(raw)
    return raw  # lower-case bare word: a string constant


def _render_term(term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, str):
        return f"'{term}'"
    return repr(term)


# ---------------------------------------------------------------------------
# Evaluation and containment
# ---------------------------------------------------------------------------


def evaluate(cq: ConjunctiveQuery, database: dict) -> set:
    """Evaluate `cq` over `database` (predicate -> iterable of tuples).

    Returns the set of head tuples. Backtracking join in body order —
    adequate for the canonical databases containment uses and the small
    instances tests build.
    """
    results: set = set()
    body = cq.body

    def resolve(term, binding):
        return binding.get(term, term) if isinstance(term, Var) else term

    def recurse(index: int, binding: dict):
        if index == len(body):
            results.add(tuple(resolve(term, binding) for term in cq.head))
            return
        atom = body[index]
        for row in database.get(atom.predicate, ()):
            if len(row) != len(atom.terms):
                continue
            extended = _unify_row(atom.terms, row, binding)
            if extended is not None:
                recurse(index + 1, extended)

    recurse(0, {})
    return results


def _unify_row(terms: Sequence, row: Sequence, binding: dict) -> Optional[dict]:
    extended = binding
    for term, value in zip(terms, row):
        if isinstance(term, Var):
            bound = extended.get(term)
            if bound is None:
                if extended is binding:
                    extended = dict(binding)
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended if extended is not binding else dict(binding)


@dataclass(frozen=True)
class _Frozen:
    """A frozen variable: the canonical-database constant for `var`."""

    name: str

    def __repr__(self):
        return f"«{self.name}»"


def canonical_database(cq: ConjunctiveQuery) -> tuple[dict, tuple]:
    """Freeze `cq`: variables become unique constants.

    Returns (database, frozen_head): the canonical instance and the head
    tuple under the freezing substitution.
    """
    freeze = {var: _Frozen(var.name) for var in cq.variables()}
    frozen = cq.substitute(freeze)
    database: dict = {}
    for atom in frozen.body:
        database.setdefault(atom.predicate, []).append(tuple(atom.terms))
    return database, tuple(frozen.head)


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff q1 ⊑ q2 (every answer of q1 is an answer of q2, set semantics).

    Classical theorem: q1 ⊑ q2 iff the frozen head of q1 is among q2's
    answers over q1's canonical database.
    """
    if len(q1.head) != len(q2.head):
        return False
    database, frozen_head = canonical_database(q1)
    return frozen_head in evaluate(q2, database)


def is_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)
