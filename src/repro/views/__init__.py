"""View management: virtual views, materialized views and refresh policies.

Draper's §5 names two features that made Nimble usable in the field and
which "pure" EII lacks: views as the central factoring metaphor, and a
materialized-view capability that let administrators "choose whether she
wanted live data for a particular view or not" — a light-weight ETL
system. `ViewManager` provides both over a federated engine, plus the
staleness bookkeeping the advisor (E1/E5/E14) measures.
"""

from repro.views.manager import MaterializedView, RefreshPolicy, ViewManager
from repro.views.invalidation import (
    ChangeNotifier,
    table_dependencies,
    wire_invalidation,
)

__all__ = [
    "ChangeNotifier",
    "MaterializedView",
    "RefreshPolicy",
    "ViewManager",
    "table_dependencies",
    "wire_invalidation",
]
