"""View management: virtual views, materialized views and refresh policies.

Draper's §5 names two features that made Nimble usable in the field and
which "pure" EII lacks: views as the central factoring metaphor, and a
materialized-view capability that let administrators "choose whether she
wanted live data for a particular view or not" — a light-weight ETL
system. `ViewManager` provides both over a federated engine, plus the
staleness bookkeeping the advisor (E1/E5/E14) measures.

`repro.views.answering` closes Halevy's loop: materialized views are not
just read explicitly, they *answer* ordinary federated SELECTs via
subsumption matching and local compensation (see `ViewAnswering`),
gated by a staleness-aware `ServePolicy`.
"""

from repro.views.answering import (
    ViewAnswer,
    ViewAnswering,
    ViewProvenance,
    match_and_rewrite,
)
from repro.views.catalog import (
    CompiledView,
    QueryShape,
    ServePolicy,
    UnsupportedShape,
    compile_shape,
    compile_view,
)
from repro.views.invalidation import (
    ChangeNotifier,
    table_dependencies,
    wire_invalidation,
)
from repro.views.manager import MaterializedView, RefreshPolicy, ViewManager

__all__ = [
    "ChangeNotifier",
    "CompiledView",
    "MaterializedView",
    "QueryShape",
    "RefreshPolicy",
    "ServePolicy",
    "UnsupportedShape",
    "ViewAnswer",
    "ViewAnswering",
    "ViewManager",
    "ViewProvenance",
    "compile_shape",
    "compile_view",
    "match_and_rewrite",
    "table_dependencies",
    "wire_invalidation",
]
