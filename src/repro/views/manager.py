"""Virtual and materialized views over a federated engine."""

from __future__ import annotations

import enum
import inspect
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import SchemaError
from repro.common.relation import Relation


class RefreshPolicy(enum.Enum):
    """When a materialized view's contents are recomputed."""

    MANUAL = "manual"  # only on explicit refresh()
    INTERVAL = "interval"  # refresh when older than `interval_s`
    ON_QUERY = "on_query"  # always recompute on read (live data)


@dataclass
class MaterializedView:
    """One materialized view instance plus its freshness bookkeeping."""

    name: str
    sql: str
    policy: RefreshPolicy
    interval_s: float = 60.0
    data: Optional[Relation] = None
    refreshed_at: Optional[float] = None
    refresh_count: int = 0
    serve_count: int = 0
    #: set by change-notification wiring; cleared on refresh
    dirty: bool = False
    #: cumulative simulated seconds spent refreshing (the "ETL cost")
    refresh_seconds: float = 0.0
    #: the owning manager's clock, set at define time so staleness runs on
    #: engine time (SimClock under benchmarks), not wall-clock
    clock: Optional[Callable[[], float]] = None

    def staleness(self, now: Optional[float] = None) -> float:
        """Seconds since the last refresh (inf if never refreshed).

        With no explicit `now`, reads the view's own clock — the manager's
        (and hence the engine's) clock — falling back to wall time only for
        standalone instances. Historically this always used `time.time`,
        which made INTERVAL refresh and staleness accounting
        non-deterministic whenever the engine ran on a `SimClock`.
        """
        if self.refreshed_at is None:
            return float("inf")
        if now is None:
            now = self.clock() if self.clock is not None else time.time()
        return max(now - self.refreshed_at, 0.0)


class ViewManager:
    """Registry of virtual and materialized views over one federated engine.

    A *virtual* view re-executes its query on every read (live data, full
    federation cost each time). A *materialized* view serves stored rows
    and refreshes per its policy. `clock` is injectable so benchmarks can
    drive simulated time deterministically.
    """

    def __init__(self, engine, clock=None):
        self.engine = engine
        # default to the engine's clock so staleness is deterministic under
        # a SimClock; an explicit clock argument still wins
        self.clock = clock or getattr(engine, "clock", None) or time.time
        self._virtual: dict[str, str] = {}
        self._materialized: dict[str, MaterializedView] = {}
        self._dependencies: dict[str, frozenset] = {}
        self._supports_use_views = (
            "use_views" in inspect.signature(engine.query).parameters
        )

    # -- definition ---------------------------------------------------------------

    def define_virtual(self, name: str, sql: str) -> None:
        self._check_free(name)
        self._virtual[name.lower()] = sql

    def define_materialized(
        self,
        name: str,
        sql: str,
        policy: RefreshPolicy = RefreshPolicy.MANUAL,
        interval_s: float = 60.0,
        refresh_now: bool = True,
    ) -> MaterializedView:
        self._check_free(name)
        view = MaterializedView(name, sql, policy, interval_s, clock=self.clock)
        self._materialized[name.lower()] = view
        if refresh_now:
            self.refresh(name)
        return view

    def drop(self, name: str) -> None:
        key = name.lower()
        if key in self._virtual:
            del self._virtual[key]
        elif key in self._materialized:
            del self._materialized[key]
            self._dependencies.pop(key, None)
        else:
            raise SchemaError(f"no view {name!r}")

    def names(self) -> list[str]:
        return sorted(list(self._virtual) + list(self._materialized))

    def materialized_names(self) -> list[str]:
        """Materialized view names only (the matchable population)."""
        return sorted(self._materialized)

    def materialized(self, name: str) -> MaterializedView:
        """Alias of `view`, named for the answering layer's call sites."""
        return self.view(name)

    def view(self, name: str) -> MaterializedView:
        view = self._materialized.get(name.lower())
        if view is None:
            raise SchemaError(f"no materialized view {name!r}")
        return view

    def dependencies(self, name: str) -> frozenset:
        """Base tables the named materialized view reads (cached per SQL)."""
        view = self.view(name)
        key = name.lower()
        cached = self._dependencies.get(key)
        if cached is None:
            from repro.views.invalidation import table_dependencies

            cached = self._dependencies[key] = frozenset(
                table_dependencies(view.sql)
            )
        return cached

    def on_table_changed(self, table: str) -> None:
        """Mark every view reading `table` dirty.

        Unlike `wire_invalidation` (which snapshots dependencies at wiring
        time), this recomputes lazily per view, so views defined *after*
        the broker was attached — e.g. advisor-created ones — are covered.
        """
        wanted = table.lower()
        for name in list(self._materialized):
            if wanted in self.dependencies(name):
                self.mark_dirty(name)

    # -- reads ---------------------------------------------------------------------

    def read(self, name: str) -> Relation:
        """Read a view, refreshing a materialized one per its policy."""
        key = name.lower()
        if key in self._virtual:
            return self._run(self._virtual[key])
        view = self.view(name)
        view.serve_count += 1
        if view.policy is RefreshPolicy.ON_QUERY:
            self.refresh(name)
        elif view.policy is RefreshPolicy.INTERVAL:
            if view.staleness(self.clock()) > view.interval_s:
                self.refresh(name)
        if view.data is None or view.dirty:
            self.refresh(name)
        return view.data

    def read_with_staleness(self, name: str) -> tuple[Relation, float]:
        """Read plus the staleness (0 for virtual/live reads)."""
        key = name.lower()
        if key in self._virtual:
            return self._run(self._virtual[key]), 0.0
        relation = self.read(name)
        return relation, self.view(name).staleness(self.clock())

    # -- refresh ----------------------------------------------------------------------

    def refresh(self, name: str) -> MaterializedView:
        """Recompute a materialized view now."""
        view = self.view(name)
        result = self._query(view.sql)
        view.data = result.relation if hasattr(result, "relation") else result
        view.refreshed_at = self.clock()
        view.refresh_count += 1
        view.refresh_seconds += getattr(result, "elapsed_seconds", 0.0)
        view.dirty = False
        return view

    def mark_dirty(self, name: str) -> None:
        """Flag a view stale; the next read refreshes it (see invalidation)."""
        self.view(name).dirty = True

    def refresh_all(self) -> None:
        for name in list(self._materialized):
            self.refresh(name)

    # -- internals ----------------------------------------------------------------------

    def _check_free(self, name: str) -> None:
        key = name.lower()
        if key in self._virtual or key in self._materialized:
            raise SchemaError(f"view {name!r} already defined")

    def _query(self, sql: str):
        # refresh queries must not themselves be answered from views
        if self._supports_use_views:
            return self.engine.query(sql, use_views=False)
        return self.engine.query(sql)

    def _run(self, sql: str) -> Relation:
        result = self._query(sql)
        return result.relation if hasattr(result, "relation") else result
