"""Answering queries using views: match, verify, rewrite, serve.

The semantic-caching half of Halevy's "views as the central metaphor":
instead of federating a SELECT across sources, find a registered
materialized view that *subsumes* it and compensate locally over the view's
rows — zero network, one local scan.

Matching is conservative subsumption over normalized `QueryShape`s
(`repro.views.catalog`):

* same real table set, view conjuncts a subset of query conjuncts (the
  residual becomes the compensation's WHERE);
* join structure verified with the classical conjunctive-query containment
  check (`repro.mediator.cq.is_contained_in`) for pure-inner shapes, and by
  exact join-signature equality when LEFT joins are involved;
* aggregate views answer aggregate queries by **exact** group match (plain
  projection, HAVING folded into WHERE) or by **rollup**: a view grouped by
  (a, b) answers a query grouped by (a) via re-aggregation with the usual
  derivations — COUNT→SUM, SUM→SUM, MIN→MIN, MAX→MAX, AVG→SUM/COUNT.

Serving is staleness-aware (`ServePolicy`): a dirty or over-stale view
falls back to base federation by default (row identity guaranteed), or —
with ``serve_stale`` — answers anyway, annotated as stale and never
admitted to the result cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import EIIError
from repro.engine.executor import LocalEngine
from repro.mediator.cq import Atom, ConjunctiveQuery, Var, is_contained_in
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.exprutil import column_refs, conjoin
from repro.sql.functions import is_aggregate_name
from repro.storage.catalog import Database
from repro.views.catalog import (
    CompiledView,
    QueryShape,
    ServePolicy,
    canonical_text,
    compile_shape,
    compile_view,
)


@dataclass(frozen=True)
class ViewProvenance:
    """How a result was answered from a view — carried on FederatedResult."""

    view: str
    kind: str  # "spj" | "exact" | "rollup"
    staleness_s: float
    fresh: bool

    def describe(self) -> str:
        state = "fresh" if self.fresh else "STALE"
        return (
            f"view: {self.view} ({self.kind}, "
            f"staleness={self.staleness_s:.1f}s, {state})"
        )


@dataclass
class ViewAnswer:
    """One successful view rewrite, evaluated over the view's rows."""

    relation: object
    view: str
    kind: str
    staleness_s: float
    fresh: bool
    select: Select  # the compensation, over the view as a table
    tables: frozenset  # base tables under the view (for cache tags)
    rows_scanned: int
    plan: Optional[object] = None  # logical plan of the compensation


class _RewriteFailed(Exception):
    """Internal: the compensation cannot be expressed over this view."""


def _view_col(view: CompiledView, text: str) -> ColumnRef:
    return ColumnRef(view.outputs[text].lower())


def _rebuild(node: Expr, fn: Callable) -> Expr:
    """Rebuild one non-leaf node with `fn`-rewritten children."""
    if isinstance(node, BinaryOp):
        return BinaryOp(node.op, fn(node.left), fn(node.right))
    if isinstance(node, UnaryOp):
        return UnaryOp(node.op, fn(node.operand))
    if isinstance(node, FuncCall):
        return FuncCall(node.name, tuple(fn(arg) for arg in node.args), node.distinct)
    if isinstance(node, IsNull):
        return IsNull(fn(node.operand), node.negated)
    if isinstance(node, InList):
        return InList(fn(node.operand), tuple(fn(i) for i in node.items), node.negated)
    if isinstance(node, Like):
        return Like(fn(node.operand), fn(node.pattern), node.negated)
    if isinstance(node, Between):
        return Between(fn(node.operand), fn(node.low), fn(node.high), node.negated)
    if isinstance(node, CaseWhen):
        return CaseWhen(
            tuple((fn(c), fn(v)) for c, v in node.whens),
            fn(node.default) if node.default is not None else None,
        )
    raise _RewriteFailed(f"unsupported node {type(node).__name__}")


def _rewrite_plain(expr: Expr, view: CompiledView) -> Expr:
    """SPJ rewrite: map whole matching expressions (then columns) to view
    outputs; aggregates recompute over the view's rows."""
    text = canonical_text(expr)
    if text in view.outputs and text not in view.aggregate_outputs:
        return _view_col(view, text)
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None:
            return expr  # reference to the query's own output alias
        raise _RewriteFailed(f"column {expr} not exposed by view")
    if isinstance(expr, (Literal, Star)):
        return expr
    return _rebuild(expr, lambda node: _rewrite_plain(node, view))


def _rewrite_exact(expr: Expr, view: CompiledView) -> Expr:
    """Exact-group rewrite: one view row per group, so aggregate outputs are
    referenced directly; AVG derives from SUM/COUNT when not stored."""
    text = canonical_text(expr)
    if text in view.outputs:
        return _view_col(view, text)
    if isinstance(expr, FuncCall) and is_aggregate_name(expr.name):
        if expr.distinct:
            raise _RewriteFailed("DISTINCT aggregates are not derivable")
        if expr.name == "AVG" and len(expr.args) == 1:
            sum_col, count_col = _avg_parts(view, expr.args[0])
            return BinaryOp("/", sum_col, count_col)
        raise _RewriteFailed(f"aggregate {text} not exposed by view")
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None:
            return expr
        raise _RewriteFailed(f"column {expr} not exposed by view")
    if isinstance(expr, (Literal, Star)):
        return expr
    return _rebuild(expr, lambda node: _rewrite_exact(node, view))


def _rewrite_rollup(expr: Expr, view: CompiledView) -> Expr:
    """Rollup rewrite: re-aggregate over coarser groups with the standard
    derivations (COUNT→SUM, SUM→SUM, MIN→MIN, MAX→MAX, AVG→SUM/SUM)."""
    if isinstance(expr, FuncCall) and is_aggregate_name(expr.name):
        if expr.distinct:
            raise _RewriteFailed("DISTINCT aggregates do not roll up")
        text = canonical_text(expr)
        stored = view.aggregate_outputs.get(text)
        if expr.name in ("MIN", "MAX"):
            if stored is None:
                raise _RewriteFailed(f"{text} not exposed by view")
            return FuncCall(expr.name, (ColumnRef(stored.lower()),))
        if expr.name in ("COUNT", "SUM"):
            if stored is None:
                raise _RewriteFailed(f"{text} not exposed by view")
            return FuncCall("SUM", (ColumnRef(stored.lower()),))
        if expr.name == "AVG" and len(expr.args) == 1:
            sum_col, count_col = _avg_parts(view, expr.args[0])
            return BinaryOp(
                "/",
                FuncCall("SUM", (sum_col,)),
                FuncCall("SUM", (count_col,)),
            )
        raise _RewriteFailed(f"aggregate {text} does not roll up")
    text = canonical_text(expr)
    if text in view.outputs and text not in view.aggregate_outputs:
        return _view_col(view, text)
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None:
            return expr
        raise _RewriteFailed(f"column {expr} not exposed by view")
    if isinstance(expr, (Literal, Star)):
        return expr
    return _rebuild(expr, lambda node: _rewrite_rollup(node, view))


def _avg_parts(view: CompiledView, arg: Expr) -> tuple:
    """The stored SUM and COUNT columns AVG(arg) derives from."""
    arg_text = str(arg)
    stored_sum = view.aggregate_outputs.get(f"SUM({arg_text})")
    stored_count = view.aggregate_outputs.get(
        f"COUNT({arg_text})"
    ) or view.aggregate_outputs.get("COUNT(*)")
    if stored_sum is None or stored_count is None:
        raise _RewriteFailed(f"AVG({arg_text}) not derivable from view")
    return ColumnRef(stored_sum.lower()), ColumnRef(stored_count.lower())


# ---------------------------------------------------------------------------
# Containment verification (pure-inner shapes)
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self):
        self.parent: dict = {}

    def find(self, key):
        root = key
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(key, key) != key:
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def _shape_cq(shape: QueryShape, name: str, head_keys, catalog) -> ConjunctiveQuery:
    """The shape's equality skeleton as a conjunctive query.

    Variables are named by the union-find representative of each
    `table.column` equivalence class; column = literal conjuncts substitute
    the constant. Non-equality conjuncts are dropped — sound here, because
    dropping restrictions only widens the query being checked for
    containment (and the view side's extra conjuncts were already required
    to appear textually in the query).
    """
    classes = _UnionFind()
    constants: dict = {}
    for expr in shape.conjuncts.values():
        if not (isinstance(expr, BinaryOp) and expr.op == "="):
            continue
        left, right = expr.left, expr.right
        if (
            isinstance(left, ColumnRef)
            and left.qualifier
            and isinstance(right, ColumnRef)
            and right.qualifier
        ):
            classes.union(str(left), str(right))
        elif isinstance(left, ColumnRef) and left.qualifier and isinstance(right, Literal):
            constants[str(left)] = right.value
        elif isinstance(right, ColumnRef) and right.qualifier and isinstance(left, Literal):
            constants[str(right)] = left.value

    by_class: dict = {}
    for key, value in constants.items():
        by_class[classes.find(key)] = value

    def term(key: str):
        rep = classes.find(key)
        if rep in by_class:
            return by_class[rep]
        return Var(f"V_{rep.replace('.', '_')}")

    body = []
    for table in sorted(shape.tables):
        columns = catalog.entry(table).schema.names
        body.append(
            Atom(table, tuple(term(f"{table}.{col.lower()}") for col in columns))
        )
    head = tuple(term(key) for key in sorted(head_keys))
    return ConjunctiveQuery(name, head, tuple(body))


def _verify_containment(q: QueryShape, v: QueryShape, catalog) -> bool:
    """q ⊆ v on the equality skeleton (canonical-database theorem)."""
    head_keys = q.needed_columns()
    try:
        q_cq = _shape_cq(q, "q", head_keys, catalog)
        v_cq = _shape_cq(v, "v", head_keys, catalog)
    except EIIError:
        return False
    return is_contained_in(q_cq, v_cq)


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


def match_and_rewrite(
    q: QueryShape, view: CompiledView, catalog
) -> Optional[tuple]:
    """Try to answer shape `q` from `view`: returns (Select, kind) or None.

    The returned Select reads the view as a single local table named after
    the view, with the query's output names preserved as aliases.
    """
    v = view.shape
    if q.tables != v.tables:
        return None
    if q.has_left or v.has_left:
        if q.has_left != v.has_left or q.join_sig != v.join_sig:
            return None
    if not set(v.conjuncts) <= set(q.conjuncts):
        return None
    residual = [
        expr for text, expr in q.conjuncts.items() if text not in v.conjuncts
    ]
    if not q.has_left and not _verify_containment(q, v, catalog):
        return None

    if v.is_aggregate:
        if not q.is_aggregate:
            return None
        # pre-aggregation filters and grouping must ride on view group keys
        for conj in residual:
            for ref in column_refs(conj):
                if ref.qualifier is None:
                    return None
                text = str(ref)
                if text not in view.outputs or text not in v.group_texts:
                    return None
        if not (q.group_texts <= v.group_texts):
            return None
        if any(text not in view.outputs for text, _ in q.group):
            return None
        exact = q.group_texts == v.group_texts
        rewriter = _rewrite_exact if exact else _rewrite_rollup
        kind = "exact" if exact else "rollup"
    else:
        rewriter = _rewrite_plain
        kind = "spj"

    def rw(expr: Expr) -> Expr:
        return rewriter(expr, view)

    try:
        items = tuple(SelectItem(rw(item.expr), alias=item.name) for item in q.items)
        where_parts = [_rewrite_plain(conj, view) for conj in residual]
        having: Optional[Expr] = None
        if kind == "exact":
            # one view row per group: grouping disappears, HAVING filters rows
            group_by: tuple = ()
            if q.having is not None:
                where_parts.append(rw(q.having))
        else:
            group_by = tuple(rw(expr) for _, expr in q.group)
            if q.having is not None:
                having = rw(q.having)
        order_by = tuple(
            OrderItem(rw(order.expr), order.ascending) for order in q.order_by
        )
    except _RewriteFailed:
        return None

    rewritten = Select(
        items=items,
        from_tables=(TableRef(view.name),),
        joins=(),
        where=conjoin(where_parts) if where_parts else None,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=q.limit,
        distinct=q.distinct,
    )
    return rewritten, kind


# ---------------------------------------------------------------------------
# The serving layer
# ---------------------------------------------------------------------------


@dataclass
class _Scratch:
    """A view's rows staged as a local single-table database."""

    stamp: tuple
    engine: Optional[LocalEngine]
    rows: int


class ViewAnswering:
    """Matches engine SELECTs against the engine's materialized views.

    Owned by `FederatedEngine`; `try_answer` is called on the query path
    (result-cache miss, before planning). Thread-safe: one lock serializes
    matching, refresh decisions and scratch staging. Nested engine queries
    issued by view refresh run with ``use_views=False``, so the lock is
    never re-entered.
    """

    def __init__(self, engine, policy: Optional[ServePolicy] = None):
        self.engine = engine
        self.policy = policy or ServePolicy()
        self._lock = threading.Lock()
        #: view name -> (sql, CompiledView | None when uncompilable)
        self._compiled: dict = {}
        self._scratch: dict = {}

    # -- compile caches --------------------------------------------------------

    def _compiled_view(self, name: str, sql: str) -> Optional[CompiledView]:
        cached = self._compiled.get(name)
        if cached is not None and cached[0] == sql:
            return cached[1]
        from repro.sql.parser import parse

        compiled: Optional[CompiledView] = None
        try:
            statement = parse(sql)
            if isinstance(statement, Select):
                compiled = compile_view(name, sql, statement, self.engine.catalog)
        except EIIError:
            compiled = None
        self._compiled[name] = (sql, compiled)
        return compiled

    def _scratch_for(self, name: str, view, compiled: CompiledView) -> Optional[_Scratch]:
        stamp = (view.refreshed_at, view.refresh_count)
        scratch = self._scratch.get(name)
        if scratch is not None and scratch.stamp == stamp:
            return scratch if scratch.engine is not None else None
        relation = view.data
        scratch = _Scratch(stamp, None, len(relation.rows))
        have = {column.name.lower() for column in relation.schema.columns}
        want = {output.lower() for output in compiled.outputs.values()}
        if want <= have:
            db = Database(f"view_{name}")
            db.create_table(
                name, [(column.name, column.dtype) for column in relation.schema.columns]
            )
            table = db.table(name)
            for row in relation.rows:
                table.insert(row)
            scratch.engine = LocalEngine(db)
        self._scratch[name] = scratch
        return scratch if scratch.engine is not None else None

    # -- the answer path -------------------------------------------------------

    def try_answer(self, statement) -> tuple:
        """Try to answer `statement` from a materialized view.

        Returns ``(ViewAnswer | None, fallback_view_names)`` —
        ``fallback_view_names`` lists views that *matched* but were too
        stale to serve under the policy (recorded as view_fallbacks).
        """
        if not isinstance(statement, Select):
            return None, []
        manager = getattr(self.engine, "views", None)
        if manager is None:
            return None, []
        with self._lock:
            try:
                q = compile_shape(statement, self.engine.catalog)
            except EIIError:
                return None, []
            fallbacks: list = []
            for name in manager.materialized_names():
                view = manager.materialized(name)
                compiled = self._compiled_view(name, view.sql)
                if compiled is None:
                    continue
                match = match_and_rewrite(q, compiled, self.engine.catalog)
                if match is None:
                    continue
                rewritten, kind = match
                answer = self._serve(name, view, compiled, rewritten, kind, fallbacks)
                if answer is not None:
                    return answer, fallbacks
            return None, fallbacks

    def _serve(
        self, name, view, compiled, rewritten, kind, fallbacks
    ) -> Optional[ViewAnswer]:
        from repro.views.manager import RefreshPolicy

        manager = self.engine.views
        try:
            if view.policy == RefreshPolicy.ON_QUERY:
                manager.refresh(name)
            elif view.policy == RefreshPolicy.INTERVAL and (
                view.data is None
                or view.dirty
                or view.staleness() > view.interval_s
            ):
                manager.refresh(name)
        except EIIError:
            return None
        if view.data is None:
            fallbacks.append(name)
            return None
        staleness = view.staleness()
        fresh = self.policy.is_fresh(view.dirty, staleness)
        if not fresh and not self.policy.serve_stale:
            fallbacks.append(name)
            return None
        scratch = self._scratch_for(name, view, compiled)
        if scratch is None:
            return None
        try:
            relation = scratch.engine.query(rewritten)
            plan = scratch.engine.logical_plan(rewritten)
        except EIIError:
            return None
        view.serve_count += 1
        return ViewAnswer(
            relation=relation,
            view=name,
            kind=kind,
            staleness_s=staleness,
            fresh=fresh,
            select=rewritten,
            tables=compiled.base_tables,
            rows_scanned=scratch.rows,
            plan=plan,
        )
