"""Automatic change notification and view invalidation.

Rosenthal (§7): programmers hand-code Read/Notify/Update methods; "It
should be possible to generate Notify methods automatically." This module
does exactly that for the read side: a `ChangeNotifier` watches source
tables (by their monotonic version counters) and publishes
`table.<name>.changed` events on the EAI broker; `wire_invalidation`
derives each materialized view's table dependencies *from its own SQL*
and subscribes it, so views go stale the moment an underlying table
changes — no hand-written plumbing per view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.eai.broker import MessageBroker
from repro.sql.ast import Select, UnionSelect
from repro.sql.parser import parse
from repro.views.manager import ViewManager


def table_dependencies(sql: str, mediated_schema=None) -> set[str]:
    """The lower-cased base-table names a SELECT (or union) references.

    When `mediated_schema` (a `repro.mediator.MediatedSchema`) is given,
    references to mediated views are expanded recursively, so a dashboard
    over `customer360` correctly depends on the *source* tables underneath.
    The mediated names themselves are also included (useful for logging).
    """
    statement = parse(sql)
    selects: list[Select] = []
    if isinstance(statement, UnionSelect):
        selects.extend(statement.selects)
    elif isinstance(statement, Select):
        selects.append(statement)
    out: set[str] = set()
    pending: list[Select] = selects
    seen_views: set[str] = set()
    while pending:
        select = pending.pop()
        for table in select.tables():
            name = table.name.lower()
            out.add(name)
            if (
                mediated_schema is not None
                and name not in seen_views
                and mediated_schema.has(name)
            ):
                seen_views.add(name)
                pending.append(mediated_schema.definition(name))
    return out


@dataclass
class _Watch:
    name: str
    table: object  # repro.storage.Table
    last_version: int


class ChangeNotifier:
    """Publishes change events for watched tables (the generated Notify).

    Real sources would push; our storage tables expose a monotone `version`
    counter, so the notifier polls it. One `poll()` sweep publishes one
    `table.<name>.changed` event per table that changed since the last
    sweep.
    """

    def __init__(self, broker: Optional[MessageBroker] = None):
        self.broker = broker or MessageBroker()
        self._watches: dict[str, _Watch] = {}

    def watch(self, name: str, table) -> None:
        self._watches[name.lower()] = _Watch(name.lower(), table, table.version)

    def watch_database(self, db) -> None:
        for table in db.tables():
            self.watch(table.name, table)

    def poll(self) -> list[str]:
        """Publish events for changed tables; returns the changed names."""
        changed = []
        for watch in self._watches.values():
            if watch.table.version != watch.last_version:
                watch.last_version = watch.table.version
                self.broker.publish(
                    f"table.{watch.name}.changed",
                    {"table": watch.name, "version": watch.table.version},
                )
                changed.append(watch.name)
        return changed


def wire_cache_invalidation(cache, broker: MessageBroker) -> None:
    """Evict mediator-cache entries when a table's change event fires.

    `cache` is a `repro.cache.CacheHierarchy` (or anything exposing
    `invalidate_table`); fetch- and result-level entries tagged with the
    changed table are dropped, so no query can read through the cache past
    a write that the broker has announced.
    """

    def on_change(message):
        cache.invalidate_table(message.payload["table"])

    broker.subscribe("table.*.changed", on_change)


def wire_invalidation(
    manager: ViewManager,
    broker: MessageBroker,
    eager: bool = False,
    mediated_schema=None,
    cache=None,
) -> dict:
    """Subscribe every materialized view to its tables' change events.

    Dependencies are computed from each view's SQL — nothing is declared by
    hand; pass `mediated_schema` so views over GAV virtual tables depend on
    the source tables underneath. `eager=True` refreshes immediately on
    notification; the default marks the view dirty so the next read
    refreshes (cheaper under bursts). Pass `cache` (a
    `repro.cache.CacheHierarchy`) to also evict dependent fetch/result
    cache entries on the same events. Returns `{view: {tables}}`.
    """
    if cache is not None:
        wire_cache_invalidation(cache, broker)
    dependencies = {
        name: table_dependencies(manager.view(name).sql, mediated_schema)
        for name in manager.names()
        if name in manager._materialized
    }

    def on_change(message):
        table = message.payload["table"].lower()
        for view_name, tables in dependencies.items():
            if table in tables:
                if eager:
                    manager.refresh(view_name)
                else:
                    manager.mark_dirty(view_name)

    broker.subscribe("table.*.changed", on_change)
    return dependencies
