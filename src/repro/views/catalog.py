"""View definitions compiled for query answering.

`compile_shape` normalizes a SELECT into a `QueryShape`: every column
reference is resolved to its *real* source table (aliases erased, case
folded), join conditions of inner joins are folded into the conjunct set,
and every expression gets a canonical text under which it can be compared
across queries. A `CompiledView` is a shape plus the output-column maps the
matcher needs: which `table.column` (and which whole expressions) the view
exposes under which output name.

The normalization is deliberately conservative: anything the matcher
cannot reason about (star projections, unions, DISTINCT views, subqueries
via unknown tables, duplicate table uses) raises `UnsupportedShape`, and
the answering layer simply leaves those queries to base federation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import EIIError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Select,
    Star,
    UnaryOp,
)
from repro.sql.exprutil import column_refs, split_conjuncts
from repro.sql.functions import is_aggregate_name


class UnsupportedShape(EIIError):
    """The statement is outside the matcher's SELECT-project-join-aggregate
    fragment; view answering skips it (base federation still runs it)."""


@dataclass(frozen=True)
class ServePolicy:
    """When a matching materialized view may answer instead of federating.

    The Halevy tradeoff, as a policy object: ``max_staleness_s`` is the
    serve-if-fresher-than bound (None = any age, as long as the view is not
    dirty); ``serve_stale`` opts into answering from a dirty or over-stale
    view anyway — the result is then annotated ``fresh=False`` and is never
    admitted to the result cache.
    """

    max_staleness_s: Optional[float] = None
    serve_stale: bool = False

    def is_fresh(self, dirty: bool, staleness_s: float) -> bool:
        if dirty:
            return False
        if self.max_staleness_s is None:
            return True
        return staleness_s <= self.max_staleness_s


@dataclass(frozen=True)
class ShapeItem:
    """One normalized output column of a SELECT."""

    name: str  # output (alias or column) name, original case
    expr: Expr  # normalized expression
    text: str  # canonical text of `expr`
    is_aggregate: bool


@dataclass
class QueryShape:
    """A SELECT normalized for view matching."""

    tables: frozenset  # real table names, lower-cased
    #: ordered ((kind, table, canonical condition text) ...); populated —
    #: and required to match exactly — only when the query has LEFT joins
    join_sig: tuple = ()
    has_left: bool = False
    #: canonical text -> normalized conjunct (WHERE plus inner-join ON)
    conjuncts: dict = field(default_factory=dict)
    items: list = field(default_factory=list)  # list[ShapeItem]
    group: list = field(default_factory=list)  # [(text, normalized expr)]
    having: Optional[Expr] = None
    order_by: tuple = ()  # normalized OrderItems
    limit: Optional[int] = None
    distinct: bool = False
    is_aggregate: bool = False

    @property
    def group_texts(self) -> set:
        return {text for text, _ in self.group}

    def needed_columns(self) -> set:
        """Qualified `table.column` texts the compensation must read."""
        needed: set = set()
        exprs: list = [item.expr for item in self.items]
        exprs.extend(expr for _, expr in self.group)
        if self.having is not None:
            exprs.append(self.having)
        exprs.extend(order.expr for order in self.order_by)
        exprs.extend(self.conjuncts.values())
        for expr in exprs:
            for ref in column_refs(expr):
                if ref.qualifier is not None:
                    needed.add(str(ref))
        return needed


@dataclass
class CompiledView:
    """A materialized view's shape plus its output-column maps."""

    name: str
    sql: str
    shape: QueryShape
    #: canonical expression text -> output column name; includes plain
    #: columns (text "table.column") and computed/aggregate outputs alike
    outputs: dict = field(default_factory=dict)
    #: canonical aggregate text -> output name (subset of `outputs`)
    aggregate_outputs: dict = field(default_factory=dict)

    @property
    def base_tables(self) -> frozenset:
        return self.shape.tables


def canonical_text(expr: Expr) -> str:
    """Canonical comparison text: commutative equality is side-sorted."""
    if (
        isinstance(expr, BinaryOp)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
    ):
        left, right = str(expr.left), str(expr.right)
        if right < left:
            left, right = right, left
        return f"({left} = {right})"
    return str(expr)


class _Resolver:
    """Rewrites expressions so every column carries its real table name."""

    def __init__(self, binding_to_table: dict, schema_of: Callable, aliases: set):
        self.binding_to_table = binding_to_table  # binding -> real table
        self.schema_of = schema_of  # table -> list of column names (lower)
        self.aliases = aliases  # query output aliases (lower)

    def resolve_column(self, ref: ColumnRef) -> ColumnRef:
        name = ref.name.lower()
        if ref.qualifier is not None:
            table = self.binding_to_table.get(ref.qualifier.lower())
            if table is None:
                raise UnsupportedShape(f"unknown binding {ref.qualifier!r}")
            if name not in self.schema_of(table):
                raise UnsupportedShape(f"unknown column {ref}")
            return ColumnRef(name, table)
        owners = [
            table
            for table in sorted(set(self.binding_to_table.values()))
            if name in self.schema_of(table)
        ]
        if len(owners) == 1:
            return ColumnRef(name, owners[0])
        if not owners and name in self.aliases:
            # a reference to the query's own output alias (ORDER BY etc.)
            return ColumnRef(name)
        raise UnsupportedShape(
            f"cannot attribute column {ref.name!r} to one table"
        )

    def expr(self, node: Expr) -> Expr:
        if isinstance(node, ColumnRef):
            return self.resolve_column(node)
        if isinstance(node, Literal):
            return node
        if isinstance(node, Star):
            if node.qualifier is not None:
                raise UnsupportedShape("qualified * is not matchable")
            return node
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, self.expr(node.operand))
        if isinstance(node, FuncCall):
            return FuncCall(
                node.name.upper(),
                tuple(self.expr(arg) for arg in node.args),
                node.distinct,
            )
        if isinstance(node, IsNull):
            return IsNull(self.expr(node.operand), node.negated)
        if isinstance(node, InList):
            return InList(
                self.expr(node.operand),
                tuple(self.expr(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, Like):
            return Like(self.expr(node.operand), self.expr(node.pattern), node.negated)
        if isinstance(node, Between):
            return Between(
                self.expr(node.operand),
                self.expr(node.low),
                self.expr(node.high),
                node.negated,
            )
        if isinstance(node, CaseWhen):
            return CaseWhen(
                tuple((self.expr(c), self.expr(v)) for c, v in node.whens),
                self.expr(node.default) if node.default is not None else None,
            )
        raise UnsupportedShape(f"unsupported expression {type(node).__name__}")


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall) and is_aggregate_name(expr.name):
        return True
    from repro.sql.exprutil import children

    return any(_contains_aggregate(child) for child in children(expr))


def compile_shape(select: Select, catalog) -> QueryShape:
    """Normalize `select` against the federation `catalog`.

    Raises `UnsupportedShape` for statements outside the matchable
    fragment. `catalog` needs `has_table(name)` and `entry(name).schema`.
    """
    if not isinstance(select, Select):
        raise UnsupportedShape("only plain SELECTs are matchable")
    tables = select.tables()
    binding_to_table: dict = {}
    real_tables: list = []
    for ref in tables:
        table = ref.name.lower()
        if not catalog.has_table(table):
            raise UnsupportedShape(f"unknown table {ref.name!r}")
        if table in real_tables:
            raise UnsupportedShape("self-joins are not matchable")
        real_tables.append(table)
        binding_to_table[ref.binding.lower()] = table

    schemas: dict = {}

    def schema_of(table: str) -> set:
        names = schemas.get(table)
        if names is None:
            names = schemas[table] = {
                name.lower() for name in catalog.entry(table).schema.names
            }
        return names

    aliases = {item.output_name.lower() for item in select.items}
    resolver = _Resolver(binding_to_table, schema_of, aliases)

    shape = QueryShape(tables=frozenset(real_tables))
    shape.has_left = any(join.kind != "INNER" for join in select.joins)

    conjuncts: list = list(split_conjuncts(select.where))
    if shape.has_left:
        signature = []
        for join in select.joins:
            condition = (
                canonical_text(resolver.expr(join.condition))
                if join.condition is not None
                else ""
            )
            signature.append((join.kind, join.table.name.lower(), condition))
        shape.join_sig = tuple(signature)
    else:
        for join in select.joins:
            if join.condition is not None:
                conjuncts.extend(split_conjuncts(join.condition))
    for conjunct in conjuncts:
        normalized = resolver.expr(conjunct)
        shape.conjuncts[canonical_text(normalized)] = normalized

    for item in select.items:
        if isinstance(item.expr, Star):
            raise UnsupportedShape("star projections are not matchable")
        normalized = resolver.expr(item.expr)
        shape.items.append(
            ShapeItem(
                item.output_name,
                normalized,
                canonical_text(normalized),
                _contains_aggregate(normalized),
            )
        )
    for group_expr in select.group_by:
        normalized = resolver.expr(group_expr)
        shape.group.append((canonical_text(normalized), normalized))
    if select.having is not None:
        shape.having = resolver.expr(select.having)
    shape.order_by = tuple(
        OrderItem(resolver.expr(order.expr), order.ascending)
        for order in select.order_by
    )
    shape.limit = select.limit
    shape.distinct = select.distinct
    shape.is_aggregate = bool(shape.group) or any(
        item.is_aggregate for item in shape.items
    )
    if shape.is_aggregate and not shape.group and shape.having is None:
        # a global aggregate (no GROUP BY) is still an aggregate shape
        pass
    return shape


def compile_view(name: str, sql: str, select: Select, catalog) -> CompiledView:
    """Compile one materialized view definition for matching.

    Beyond `compile_shape`, views must have unique output names, no
    DISTINCT/LIMIT (they change multiplicity under rollup), and no HAVING
    (group filtering the matcher cannot compensate for).
    """
    shape = compile_shape(select, catalog)
    if shape.distinct:
        raise UnsupportedShape("DISTINCT views are not matchable")
    if shape.limit is not None:
        raise UnsupportedShape("LIMIT views are not matchable")
    if shape.having is not None:
        raise UnsupportedShape("HAVING views are not matchable")
    compiled = CompiledView(name=name.lower(), sql=sql, shape=shape)
    seen: set = set()
    for item in shape.items:
        lowered = item.name.lower()
        if lowered in seen:
            raise UnsupportedShape(f"duplicate view output {item.name!r}")
        seen.add(lowered)
        compiled.outputs[item.text] = item.name
        if isinstance(item.expr, FuncCall) and is_aggregate_name(item.expr.name):
            compiled.aggregate_outputs[item.text] = item.name
    return compiled
