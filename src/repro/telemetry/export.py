"""Telemetry exporters: JSON lines, Prometheus text format, ASCII panel.

All three are deterministic functions of the plane's state: keys sorted,
floats rounded to nanosecond resolution (matching `repro.trace.export`),
iteration orders defined by the registry's sorted identities. Two seeded
runs of the same workload export byte-identical telemetry — which is what
lets the replay tests treat the whole operational surface as an oracle.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.telemetry.instruments import Gauge, Histogram, MonotonicCounter

_ROUND = 9


def _round(value):
    if isinstance(value, float):
        return round(value, _ROUND)
    return value


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def export_jsonl(plane) -> str:
    """The full operational record, one JSON object per line.

    Line kinds (a ``kind`` field tags each): ``window`` per closed
    time-series window, ``alert`` per alert lifecycle record, ``health``
    per source judgment, ``slo`` per tenant status — in that order, each
    kind internally ordered (windows by index, the rest by key).
    """
    lines = []
    for window in plane.series.windows:
        lines.append(_dumps({"kind": "window", **window.to_dict()}))
    for alert in plane.alerts.to_dicts():
        lines.append(_dumps({"kind": "alert", **alert}))
    for health in plane.health.to_dicts():
        lines.append(_dumps({"kind": "health", **health}))
    for status in plane.slo.to_dicts():
        lines.append(_dumps({"kind": "slo", **status}))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    rounded = round(value, _ROUND)
    if rounded == int(rounded):
        return str(int(rounded))
    return repr(rounded)


def _histogram_lines(histogram: Histogram) -> Iterable[str]:
    base_labels = list(histogram.labels)
    for bound, cumulative in histogram.cumulative_buckets():
        items = base_labels + [("le", _format_value(bound))]
        labels = "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"
        yield f"{histogram.name}_bucket{labels} {cumulative}"
    suffix = histogram.label_string()
    yield f"{histogram.name}_sum{suffix} {_format_value(histogram.sum)}"
    yield f"{histogram.name}_count{suffix} {histogram.count}"


def export_prometheus(plane) -> str:
    """Prometheus/OpenMetrics text exposition of every instrument."""
    lines = []
    for name, instruments in plane.registry.families():
        first = instruments[0]
        if first.description:
            lines.append(f"# HELP {name} {first.description}")
        lines.append(f"# TYPE {name} {first.kind}")
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                lines.extend(_histogram_lines(instrument))
            elif isinstance(instrument, (MonotonicCounter, Gauge)):
                lines.append(
                    f"{instrument.name}{instrument.label_string()} "
                    f"{_format_value(instrument.value())}"
                )
    # derived health/SLO gauges ride along so one scrape sees everything
    for name in sorted(plane.health.sources):
        entry = plane.health.sources[name]
        for state in ("healthy", "degraded", "down"):
            flag = 1 if entry.state == state else 0
            lines.append(f'eii_source_health{{source="{name}",state="{state}"}} {flag}')
    for status in plane.slo.statuses():
        lines.append(
            f'eii_slo_error_burn_rate{{tenant="{status.tenant}"}} '
            f"{_format_value(status.error_burn_rate)}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# ASCII dashboard
# ---------------------------------------------------------------------------

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Iterable[float], width: int = 32) -> str:
    """Fixed-alphabet ASCII sparkline (deterministic, terminal-safe)."""
    values = list(values)[-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for value in values:
        level = int((value / top) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(level, len(_SPARK_LEVELS) - 1))])
    return "".join(out)


def render_dashboard(plane) -> str:
    """One terminal panel: headline counters, health, SLOs, alerts."""
    lines = ["== telemetry =="]
    windows = plane.series.windows
    lines.append(
        f"windows: {plane.series.closed} closed x {plane.series.window_s:g}s "
        f"(retaining {len(windows)}); now={plane.now():.3f}s"
    )
    fetch_series = [
        sum(
            delta.get("count", 0) if isinstance(delta, dict) else 0
            for key, delta in window.deltas.items()
            if key.startswith("eii_fetch_latency_seconds")
        )
        for window in windows
    ]
    if any(fetch_series):
        lines.append(f"fetches/window:  [{sparkline(fetch_series)}]")
    failure_series = [
        sum(
            delta if isinstance(delta, (int, float)) else 0
            for key, delta in window.deltas.items()
            if key.startswith("eii_source_failures_total")
        )
        for window in windows
    ]
    if any(failure_series):
        lines.append(f"failures/window: [{sparkline(failure_series)}]")
    lines.append("")
    lines.append("-- source health --")
    lines.append(plane.health.render())
    lines.append("")
    lines.append("-- tenant SLOs --")
    lines.append(plane.slo.render())
    lines.append("")
    lines.append("-- alerts --")
    lines.append(plane.alerts.render())
    return "\n".join(lines)


__all__ = ["export_jsonl", "export_prometheus", "render_dashboard", "sparkline"]
