"""The telemetry plane: one facade over instruments, SLOs, health, alerts.

`TelemetryPlane` is what the execution layers talk to. Every hook is an
*observation* — the plane never changes behavior, so an engine with a
plane attached executes byte-for-byte the same queries as one without.
The default is `NULL_TELEMETRY` (mirroring `NullTracer`): ``enabled`` is
False, every hook is a no-op, and every call site in the engine guards on
``telemetry.enabled`` so the disabled path does zero extra work.

Hooked layers and what they report:

* `FederatedEngine` / `_FetchRuntime` — per-source fetch outcomes,
  latencies, bytes, cache hits/misses; per-query status and latency;
* `ResilienceManager` — retries, source failures, breaker short-circuits
  and breaker state transitions (which feed the health model directly);
* `WorkloadScheduler` — arrivals, queue waits, sheds/rejections and the
  per-tenant `QueryOutcome` stream that drives the SLO tracker.

`tick(now)` advances the aligned time-series windows on simulated time
and, at each window close, has the health model judge every source on
that window's activity. Everything downstream of a seeded workload is
deterministic and replayable.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.telemetry.alerts import AlertManager
from repro.telemetry.export import export_jsonl, export_prometheus, render_dashboard
from repro.telemetry.health import HealthModel, HealthPolicy, SourceWindow
from repro.telemetry.instruments import MetricsRegistry
from repro.telemetry.slo import SloPolicy, SloTracker
from repro.telemetry.timeseries import DEFAULT_RETENTION, DEFAULT_WINDOW_S, TimeSeries


class NullTelemetry:
    """The zero-cost default: observes nothing, allocates nothing."""

    enabled = False

    def on_fetch(self, *args, **kwargs) -> None:
        return None

    def on_query(self, *args, **kwargs) -> None:
        return None

    def on_view(self, *args, **kwargs) -> None:
        return None

    def on_retry(self, *args, **kwargs) -> None:
        return None

    def on_source_failure(self, *args, **kwargs) -> None:
        return None

    def on_breaker_short_circuit(self, *args, **kwargs) -> None:
        return None

    def on_breaker_transition(self, *args, **kwargs) -> None:
        return None

    def on_arrival(self, *args, **kwargs) -> None:
        return None

    def on_outcome(self, *args, **kwargs) -> None:
        return None

    def tick(self, *args, **kwargs) -> int:
        return 0


class TelemetryPlane:
    """Aggregates every operational signal of one engine / workload."""

    enabled = True

    def __init__(
        self,
        clock=None,
        window_s: float = DEFAULT_WINDOW_S,
        retention: int = DEFAULT_RETENTION,
        slo_policies: Optional[dict] = None,
        default_slo: Optional[SloPolicy] = None,
        health_policy: Optional[HealthPolicy] = None,
    ):
        self.clock = clock
        self.registry = MetricsRegistry()
        self.series = TimeSeries(
            self.registry, clock=clock, window_s=window_s, retention=retention
        )
        self.alerts = AlertManager()
        self.slo = SloTracker(
            policies=slo_policies, alerts=self.alerts, default_policy=default_slo
        )
        self.health = HealthModel(policy=health_policy, alerts=self.alerts)
        #: per-source activity since the last window close (health input)
        self._source_windows: dict[str, SourceWindow] = {}
        self._now = 0.0
        # the engine's prefetch pool reports fetches from worker threads;
        # one lock keeps counter increments exact (and therefore replayable)
        self._lock = threading.Lock()

    def now(self) -> float:
        if self.clock is not None:
            return self.clock() if callable(self.clock) else self.clock.now()
        return self._now

    def _window(self, source: str) -> SourceWindow:
        name = source.lower()
        window = self._source_windows.get(name)
        if window is None:
            window = self._source_windows[name] = SourceWindow()
        return window

    # -- engine hooks ------------------------------------------------------------

    def on_fetch(
        self,
        source: str,
        seconds: float = 0.0,
        payload_bytes: int = 0,
        wire_bytes: int = 0,
        cache: str = "",
        ok: bool = True,
        kind: str = "fetch",
    ) -> None:
        """One component fetch's outcome (remote call or cache hit)."""
        name = source.lower()
        with self._lock:
            window = self._window(name)
            if cache == "hit":
                self.registry.counter(
                    "eii_cache_hits_total", "per-source fetch-cache hits", source=name
                ).inc()
                window.cache_hits += 1
                return
            if cache == "miss":
                self.registry.counter(
                    "eii_cache_misses_total", "per-source fetch-cache misses", source=name
                ).inc()
                window.cache_misses += 1
                # the remote call that follows reports separately
                return
            outcome = "ok" if ok else "error"
            self.registry.counter(
                "eii_fetches_total",
                "component fetches by source and outcome",
                source=name,
                outcome=outcome,
            ).inc()
            if ok:
                self.registry.histogram(
                    "eii_fetch_latency_seconds",
                    "simulated per-fetch latency",
                    source=name,
                ).observe(seconds)
                if payload_bytes:
                    self.registry.counter(
                        "eii_fetch_payload_bytes_total",
                        "payload bytes shipped per source",
                        source=name,
                    ).inc(payload_bytes)
                if wire_bytes:
                    self.registry.counter(
                        "eii_fetch_wire_bytes_total",
                        "wire bytes shipped per source",
                        source=name,
                    ).inc(wire_bytes)
                window.fetches += 1
                window.latency_sum_s += seconds
            else:
                window.failures += 1

    def on_query(self, status: str, seconds: float = 0.0, rows: int = 0) -> None:
        self.registry.counter(
            "eii_queries_total", "federated queries by status", status=status
        ).inc()
        if status in ("ok", "partial"):
            self.registry.histogram(
                "eii_query_latency_seconds", "simulated per-query elapsed"
            ).observe(seconds)
            self.registry.counter(
                "eii_query_rows_total", "rows returned to clients"
            ).inc(rows)

    def on_view(self, view: str, status: str, staleness_s: float = 0.0) -> None:
        """A view-answering outcome: hit, stale (served), or fallback."""
        name = view.lower()
        with self._lock:
            self.registry.counter(
                "eii_view_answers_total",
                "view-answered queries by view and status",
                view=name,
                status=status,
            ).inc()
            if status in ("hit", "stale"):
                self.registry.histogram(
                    "eii_view_staleness_seconds",
                    "staleness of view-answered results",
                ).observe(staleness_s)

    # -- resilience hooks --------------------------------------------------------

    def on_retry(self, source: str, backoff_s: float = 0.0) -> None:
        name = source.lower()
        with self._lock:
            self.registry.counter(
                "eii_retries_total", "retries by source", source=name
            ).inc()
            self._window(name).retries += 1

    def on_source_failure(self, source: str) -> None:
        name = source.lower()
        with self._lock:
            self.registry.counter(
                "eii_source_failures_total", "failed source calls", source=name
            ).inc()
            self._window(name).failures += 1

    def on_breaker_short_circuit(self, source: str) -> None:
        with self._lock:
            self.registry.counter(
                "eii_breaker_short_circuits_total",
                "calls rejected by an open breaker",
                source=source.lower(),
            ).inc()

    def on_breaker_transition(
        self, source: str, from_state: str, to_state: str, at_s: float
    ) -> None:
        name = source.lower()
        with self._lock:
            self.registry.counter(
                "eii_breaker_transitions_total",
                "breaker state transitions",
                source=name,
                to=to_state,
            ).inc()
            self.health.note_breaker(name, to_state, at_s)

    # -- scheduler hooks ---------------------------------------------------------

    def on_arrival(self, tenant: str, queued: int) -> None:
        self.registry.counter(
            "eii_sched_arrivals_total", "workload arrivals", tenant=tenant
        ).inc()
        self.registry.gauge(
            "eii_sched_queue_depth", "admission queue depth at last arrival"
        ).set(queued)

    def on_outcome(self, outcome, now: Optional[float] = None) -> None:
        """One resolved workload outcome: counters + the SLO stream."""
        tenant = outcome.request.tenant
        self.registry.counter(
            "eii_sched_outcomes_total",
            "workload outcomes by tenant and status",
            tenant=tenant,
            status=outcome.status,
        ).inc()
        if outcome.dispatch_index >= 0:
            self.registry.histogram(
                "eii_queue_wait_seconds", "admission queue wait", tenant=tenant
            ).observe(outcome.queue_wait_s)
        if outcome.deadline_missed:
            self.registry.counter(
                "eii_deadline_misses_total", "missed deadlines", tenant=tenant
            ).inc()
        if outcome.coalesced_fetches:
            self.registry.counter(
                "eii_coalesced_fetches_total", "coalesced fetches", tenant=tenant
            ).inc(outcome.coalesced_fetches)
        at = now if now is not None else outcome.finish_s
        self._now = max(self._now, at)
        self.slo.observe(outcome, now=at)

    # -- the clockwork -----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> int:
        """Advance to `now`: close due windows and judge source health.

        Returns the number of windows closed. Safe to call as often as
        the caller likes — closing zero windows does nothing.
        """
        if now is None:
            now = self.now()
        with self._lock:
            self._now = max(self._now, now)
            closed = self.series.roll(self._now)
            if closed:
                boundary = self.series.closed * self.series.window_s
                self.health.close_window(self._source_windows, boundary)
                self._source_windows = {}
            return closed

    # -- summary counters (mirrored into MetricsCollector summaries) --------------

    @property
    def alerts_fired(self) -> int:
        return self.alerts.fired_total

    @property
    def alerts_resolved(self) -> int:
        return self.alerts.resolved_total

    @property
    def health_transitions(self) -> int:
        return self.health.transition_count

    @property
    def slo_breaches(self) -> int:
        return self.slo.breaches

    def stamp(self, collector) -> None:
        """Write the plane's headline counters onto a `MetricsCollector`."""
        collector.alerts_fired = self.alerts_fired
        collector.alerts_resolved = self.alerts_resolved
        collector.health_transitions = self.health_transitions
        collector.slo_breaches = self.slo_breaches

    # -- exports -----------------------------------------------------------------

    def export_jsonl(self) -> str:
        return export_jsonl(self)

    def export_prometheus(self) -> str:
        return export_prometheus(self)

    def render_dashboard(self) -> str:
        return render_dashboard(self)


#: Shared no-op instance; safe because it holds no state.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(telemetry) -> "TelemetryPlane | NullTelemetry":
    """Normalize a constructor argument into a plane or the null default."""
    if telemetry is None or telemetry is False:
        return NULL_TELEMETRY
    if telemetry is True:
        return TelemetryPlane()
    return telemetry


__all__ = ["NULL_TELEMETRY", "NullTelemetry", "TelemetryPlane", "resolve_telemetry"]
