"""Operational telemetry plane: metrics, SLOs, source health, alerting.

Everything here is observe-only and deterministic on simulated time. The
`TelemetryPlane` facade is what the engine, resilience layer, and
workload scheduler hook into; `NULL_TELEMETRY` is the zero-cost default
that keeps the disabled path byte-identical to a build without this
package.
"""

from repro.telemetry.alerts import (
    CRITICAL,
    FIRING,
    INFO,
    RESOLVED,
    WARNING,
    Alert,
    AlertManager,
    ThresholdRule,
    ZScoreRule,
)
from repro.telemetry.export import (
    export_jsonl,
    export_prometheus,
    render_dashboard,
    sparkline,
)
from repro.telemetry.health import (
    DEGRADED,
    DOWN,
    HEALTHY,
    HealthModel,
    HealthPolicy,
    SourceHealth,
    SourceWindow,
)
from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MonotonicCounter,
)
from repro.telemetry.plane import (
    NULL_TELEMETRY,
    NullTelemetry,
    TelemetryPlane,
    resolve_telemetry,
)
from repro.telemetry.slo import SloPolicy, SloStatus, SloTracker
from repro.telemetry.stats import Ewma, clamp, mean, percentile, safe_rate
from repro.telemetry.timeseries import (
    DEFAULT_RETENTION,
    DEFAULT_WINDOW_S,
    TimeSeries,
    Window,
)

__all__ = [
    "Alert",
    "AlertManager",
    "CRITICAL",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RETENTION",
    "DEFAULT_WINDOW_S",
    "DEGRADED",
    "DOWN",
    "Ewma",
    "FIRING",
    "Gauge",
    "HEALTHY",
    "HealthModel",
    "HealthPolicy",
    "Histogram",
    "INFO",
    "MetricsRegistry",
    "MonotonicCounter",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RESOLVED",
    "SloPolicy",
    "SloStatus",
    "SloTracker",
    "SourceHealth",
    "SourceWindow",
    "TelemetryPlane",
    "ThresholdRule",
    "TimeSeries",
    "WARNING",
    "Window",
    "ZScoreRule",
    "clamp",
    "export_jsonl",
    "export_prometheus",
    "mean",
    "percentile",
    "render_dashboard",
    "resolve_telemetry",
    "safe_rate",
    "sparkline",
]
