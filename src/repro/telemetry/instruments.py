"""Typed metric instruments and the registry that owns them.

Three instrument kinds, deliberately mirroring the Prometheus data model
so the text-exposition exporter is a straight rendering:

* `MonotonicCounter` — only ever goes up (retries, fetches, bytes);
* `Gauge` — a settable level (queue depth, breaker state, free workers);
* `Histogram` — fixed cumulative buckets plus sum/count (latencies).

Instruments are identified by ``(name, sorted label items)``; the
registry hands out one instance per identity, so every call site that
says ``registry.counter("eii_fetches_total", source="crm")`` shares one
counter. All iteration orders are sorted — exports are deterministic by
construction, never by accident of insertion order.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Tuple

from repro.telemetry.stats import safe_rate

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency buckets (simulated seconds). Chosen for the repo's
#: netsim scale: sub-millisecond cache hits up to multi-second stragglers.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _labels(labels: dict) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Common identity plumbing for all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, labels: LabelItems, description: str = ""):
        self.name = name
        self.labels = labels
        self.description = description

    @property
    def key(self) -> tuple:
        return (self.name, self.labels)

    def label_string(self) -> str:
        if not self.labels:
            return ""
        return "{" + ",".join(f'{k}="{v}"' for k, v in self.labels) + "}"

    def value(self):
        raise NotImplementedError

    def snapshot(self):
        """JSON-safe value for time-series windows (overridden as needed)."""
        return self.value()

    def __repr__(self):
        return f"{type(self).__name__}({self.name}{self.label_string()}={self.value()!r})"


class MonotonicCounter(Instrument):
    """A counter that only increases; negative increments are rejected."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, description: str = ""):
        super().__init__(name, labels, description)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self._value += amount

    def value(self) -> float:
        return self._value


class Gauge(Instrument):
    """A level that may move in either direction."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, description: str = ""):
        super().__init__(name, labels, description)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, amount: float) -> None:
        self._value += amount

    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """Fixed-bucket cumulative histogram (Prometheus-style le buckets).

    `observe` is O(log buckets); the per-bucket counts are *cumulative*
    at export time (each bucket counts observations ≤ its bound, with an
    implicit +Inf bucket equal to `count`). `quantile` reports the upper
    bound of the bucket where the cumulative count crosses the rank — the
    standard fixed-bucket estimate: cheap, deterministic, and honest
    about its resolution.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        description: str = "",
        buckets: Optional[Iterable[float]] = None,
    ):
        super().__init__(name, labels, description)
        bounds = tuple(sorted(set(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)  # per-bucket, not cumulative
        self.count = 0
        self.sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value > self._max:
            self._max = value
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self._bucket_counts):
            self._bucket_counts[index] += 1
        # values above the last bound land only in the implicit +Inf bucket

    def cumulative_buckets(self) -> list:
        """``[(le_bound, cumulative_count), ...]`` ending at +Inf."""
        out = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self._bucket_counts):
            running += bucket_count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, fraction: float) -> float:
        """Upper bucket bound holding the nearest-rank quantile (0 empty)."""
        if self.count == 0:
            return 0.0
        if fraction >= 1.0:
            return self._max
        rank = max(1, math.ceil(fraction * self.count))
        running = 0
        for bound, bucket_count in zip(self.bounds, self._bucket_counts):
            running += bucket_count
            if running >= rank:
                return bound
        return self._max  # beyond the last bound: report the observed max

    @property
    def mean(self) -> float:
        return safe_rate(self.sum, self.count)

    @property
    def max(self) -> float:
        return self._max

    def value(self) -> float:
        return self.sum

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "max": round(self._max, 9),
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
        }


class MetricsRegistry:
    """The single home of every instrument in one telemetry plane."""

    def __init__(self):
        self._instruments: dict[tuple, Instrument] = {}

    def _get(self, cls, name: str, labels: dict, description: str, **kwargs):
        key = (name, _labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], description=description, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested as {cls.kind}"
            )
        return instrument

    def counter(self, name: str, description: str = "", **labels) -> MonotonicCounter:
        return self._get(MonotonicCounter, name, labels, description)

    def gauge(self, name: str, description: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, labels, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, description, buckets=buckets)

    # -- introspection -----------------------------------------------------------

    def instruments(self) -> list:
        """Every instrument, sorted by (name, labels) for stable exports."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def families(self) -> list:
        """Instruments grouped by metric name (Prometheus families)."""
        out: dict[str, list] = {}
        for instrument in self.instruments():
            out.setdefault(instrument.name, []).append(instrument)
        return sorted(out.items())

    def get(self, name: str, **labels) -> Optional[Instrument]:
        return self._instruments.get((name, _labels(labels)))

    def snapshot(self) -> dict:
        """Flat ``{"name{labels}": value}`` map of every instrument."""
        return {
            instrument.name + instrument.label_string(): instrument.snapshot()
            for instrument in self.instruments()
        }

    def __len__(self) -> int:
        return len(self._instruments)


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "MonotonicCounter",
]
