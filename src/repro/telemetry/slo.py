"""Per-tenant service-level objectives over rolling outcome windows.

The ROADMAP's multi-tenant north star needs more than per-query metrics:
a tenant's experience is a *rate* over recent queries. `SloTracker` folds
the workload scheduler's `QueryOutcome`s into a rolling window per tenant
and evaluates four objectives against each tenant's `SloPolicy`:

* **p95 turnaround latency** (queue wait + service, simulated seconds);
* **error rate** — failed + rejected + shed, i.e. every user-visible
  non-answer, against the tenant's error budget;
* **deadline-miss rate** over answered queries with deadlines;
* **completeness** — mean answered fraction (partial results count
  against it, weighted by their estimated missing fraction).

Burn rate is the SRE notion: observed bad-event rate divided by the
budgeted rate. 1.0 burns the budget exactly as fast as allowed; 2.0
exhausts it twice as fast. Burn rates at or above `burn_alert` raise a
deduplicated alert through the `AlertManager` — observe-only, like the
rest of the plane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.telemetry.alerts import CRITICAL, WARNING, AlertManager
from repro.telemetry.stats import percentile, safe_rate


@dataclass(frozen=True)
class SloPolicy:
    """One tenant's objectives (None disables that objective)."""

    tenant: str = "default"
    #: p95 turnaround (queue wait + service) must stay at or under this
    p95_turnaround_s: Optional[float] = None
    #: error budget: tolerated fraction of non-answers (failed/shed/rejected)
    error_budget: float = 0.05
    #: tolerated fraction of answered queries missing their deadline
    deadline_miss_budget: float = 0.10
    #: answered queries must carry at least this completeness fraction
    min_completeness: Optional[float] = 0.99
    #: rolling window length, in outcomes
    window: int = 50
    #: burn rate (observed/budgeted) at which the alert fires
    burn_alert: float = 1.0

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window!r}")
        if self.error_budget <= 0 or self.deadline_miss_budget <= 0:
            raise ValueError("budgets must be positive fractions")


@dataclass
class SloStatus:
    """One tenant's evaluated objectives at one instant."""

    tenant: str
    samples: int = 0
    p95_turnaround_s: float = 0.0
    error_rate: float = 0.0
    deadline_miss_rate: float = 0.0
    completeness: float = 1.0
    error_burn_rate: float = 0.0
    deadline_burn_rate: float = 0.0
    breached: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.breached

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "samples": self.samples,
            "p95_turnaround_s": round(self.p95_turnaround_s, 9),
            "error_rate": round(self.error_rate, 9),
            "deadline_miss_rate": round(self.deadline_miss_rate, 9),
            "completeness": round(self.completeness, 9),
            "error_burn_rate": round(self.error_burn_rate, 9),
            "deadline_burn_rate": round(self.deadline_burn_rate, 9),
            "breached": list(self.breached),
        }


@dataclass
class _Sample:
    """The slice of one `QueryOutcome` the objectives need."""

    answered: bool
    turnaround_s: float
    deadline_missed: bool
    completeness: float


class SloTracker:
    """Rolling per-tenant SLO evaluation with burn-rate alerting."""

    def __init__(
        self,
        policies: Optional[dict] = None,
        alerts: Optional[AlertManager] = None,
        default_policy: Optional[SloPolicy] = None,
    ):
        self.default_policy = default_policy or SloPolicy()
        self.policies: dict[str, SloPolicy] = dict(policies or {})
        self.alerts = alerts
        self._windows: dict[str, deque] = {}
        self._statuses: dict[str, SloStatus] = {}
        #: objective evaluations that came back breached (cumulative)
        self.breaches = 0

    def policy(self, tenant: str) -> SloPolicy:
        return self.policies.get(tenant, self.default_policy)

    # -- feeding -----------------------------------------------------------------

    def observe(self, outcome, now: Optional[float] = None) -> SloStatus:
        """Fold one `repro.sched.QueryOutcome` in; re-evaluates its tenant."""
        tenant = outcome.request.tenant
        window = self._windows.get(tenant)
        if window is None:
            window = self._windows[tenant] = deque(
                maxlen=self.policy(tenant).window
            )
        completeness = 1.0
        result = outcome.result
        if result is not None and getattr(result, "completeness", None) is not None:
            completeness = 1.0 - result.completeness.missing_fraction()
        window.append(
            _Sample(
                answered=outcome.answered,
                turnaround_s=outcome.turnaround_s,
                deadline_missed=bool(outcome.deadline_missed),
                completeness=completeness,
            )
        )
        at = now if now is not None else outcome.finish_s
        return self.evaluate(tenant, at)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, tenant: str, now: float) -> SloStatus:
        policy = self.policy(tenant)
        samples = list(self._windows.get(tenant, ()))
        status = SloStatus(tenant=tenant, samples=len(samples))
        if samples:
            answered = [s for s in samples if s.answered]
            status.error_rate = safe_rate(
                len(samples) - len(answered), len(samples)
            )
            status.deadline_miss_rate = safe_rate(
                sum(1 for s in answered if s.deadline_missed), len(answered)
            )
            status.p95_turnaround_s = percentile(
                [s.turnaround_s for s in answered], 0.95
            )
            status.completeness = (
                sum(s.completeness for s in answered) / len(answered)
                if answered
                else 0.0
            )
        status.error_burn_rate = status.error_rate / policy.error_budget
        status.deadline_burn_rate = (
            status.deadline_miss_rate / policy.deadline_miss_budget
        )

        breached = []
        if status.error_burn_rate >= policy.burn_alert and status.samples:
            breached.append("error_budget")
        if status.deadline_burn_rate >= policy.burn_alert and status.samples:
            breached.append("deadline_budget")
        if (
            policy.p95_turnaround_s is not None
            and status.samples
            and status.p95_turnaround_s > policy.p95_turnaround_s
        ):
            breached.append("p95_turnaround")
        if (
            policy.min_completeness is not None
            and status.samples
            and status.completeness < policy.min_completeness
        ):
            breached.append("completeness")
        status.breached = tuple(breached)
        self.breaches += len(breached)
        self._statuses[tenant] = status
        self._alert(status, policy, now)
        return status

    def _alert(self, status: SloStatus, policy: SloPolicy, now: float) -> None:
        if self.alerts is None:
            return
        checks = [
            (
                f"slo.{status.tenant}.error_burn",
                "error_budget" in status.breached,
                CRITICAL,
                f"tenant {status.tenant!r} burning error budget at "
                f"{status.error_burn_rate:.2f}x",
                {"burn_rate": round(status.error_burn_rate, 6)},
            ),
            (
                f"slo.{status.tenant}.deadline_burn",
                "deadline_budget" in status.breached,
                WARNING,
                f"tenant {status.tenant!r} burning deadline budget at "
                f"{status.deadline_burn_rate:.2f}x",
                {"burn_rate": round(status.deadline_burn_rate, 6)},
            ),
            (
                f"slo.{status.tenant}.p95_turnaround",
                "p95_turnaround" in status.breached,
                WARNING,
                f"tenant {status.tenant!r} p95 turnaround "
                f"{status.p95_turnaround_s:.4f}s over objective",
                {"p95_turnaround_s": round(status.p95_turnaround_s, 9)},
            ),
            (
                f"slo.{status.tenant}.completeness",
                "completeness" in status.breached,
                WARNING,
                f"tenant {status.tenant!r} completeness "
                f"{status.completeness:.4f} under objective",
                {"completeness": round(status.completeness, 9)},
            ),
        ]
        for key, breached, severity, message, attrs in checks:
            self.alerts.check(
                key, breached, now, severity=severity, message=message, **attrs
            )

    # -- reading -----------------------------------------------------------------

    def statuses(self) -> list:
        return [self._statuses[tenant] for tenant in sorted(self._statuses)]

    def status(self, tenant: str) -> Optional[SloStatus]:
        return self._statuses.get(tenant)

    def to_dicts(self) -> list:
        return [status.to_dict() for status in self.statuses()]

    HEADERS = (
        "tenant",
        "samples",
        "p95_turn_s",
        "err_rate",
        "miss_rate",
        "complete",
        "err_burn",
        "ddl_burn",
        "status",
    )

    def render(self) -> str:
        statuses = self.statuses()
        if not statuses:
            return "slo: no outcomes observed"
        rows = []
        for status in statuses:
            rows.append(
                [
                    status.tenant,
                    str(status.samples),
                    f"{status.p95_turnaround_s:.4f}",
                    f"{status.error_rate:.3f}",
                    f"{status.deadline_miss_rate:.3f}",
                    f"{status.completeness:.3f}",
                    f"{status.error_burn_rate:.2f}x",
                    f"{status.deadline_burn_rate:.2f}x",
                    "OK" if status.ok else "BREACH:" + ",".join(status.breached),
                ]
            )
        widths = [
            max(len(header), *(len(row[i]) for row in rows))
            for i, header in enumerate(self.HEADERS)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(self.HEADERS, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


__all__ = ["SloPolicy", "SloStatus", "SloTracker"]
