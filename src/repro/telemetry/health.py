"""Per-source health derivation: healthy / degraded / down.

The mediator is the one place that sees every source's behavior across
every query — the natural interposition point for operational metadata
about sources the enterprise does not control. `HealthModel` fuses, per
aligned window:

* **latency** — the window's mean fetch latency versus the source's own
  EWMA history (z-score rule: a source is judged against *itself*, so a
  slow-but-steady mainframe never pages while a regressing one does);
* **failures** — the window's failure rate, with separate degraded/down
  thresholds;
* **circuit-breaker state** — an open breaker is DOWN by definition (the
  resilience layer already refuses to call the source);
* **cache hit decay** — a collapsing hit rate means the cache stopped
  masking the source, so user-visible latency is about to regress even
  if the source itself looks unchanged.

State transitions are recorded with their reasons and mirrored into the
`AlertManager` (key ``health.<source>``) so a degradation has a
firing→resolved lifecycle. Deriving state from *observed* windows rather
than static declarations is the quality-criteria mediation idea: sources
are scored by what they did, not what they promised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.alerts import CRITICAL, WARNING, AlertManager
from repro.telemetry.stats import Ewma, safe_rate

HEALTHY = "healthy"
DEGRADED = "degraded"
DOWN = "down"

_SEVERITY = {DEGRADED: WARNING, DOWN: CRITICAL}


@dataclass
class HealthPolicy:
    """Thresholds for the per-window fusion rules."""

    #: window mean latency this many deviations above the source's EWMA
    #: baseline marks it degraded
    latency_z: float = 3.0
    #: also degraded when window mean latency exceeds baseline by this
    #: factor (catches regressions too early for the z-score's history)
    latency_factor: float = 4.0
    #: window failure-rate thresholds
    failure_rate_degraded: float = 0.25
    failure_rate_down: float = 0.75
    #: cache hit rate under `cache_hit_drop` × its EWMA baseline degrades
    cache_hit_drop: float = 0.5
    #: windows of touch-free or clean observation before re-marking healthy
    recovery_windows: int = 1
    #: EWMA smoothing for the latency / hit-rate baselines
    alpha: float = 0.3
    #: baseline windows required before the z-score rule may fire
    min_baseline_windows: int = 2


@dataclass
class SourceWindow:
    """One source's activity inside one closed window (fed by the plane)."""

    fetches: int = 0
    failures: int = 0
    latency_sum_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0

    @property
    def touched(self) -> bool:
        return (self.fetches + self.failures + self.cache_hits + self.cache_misses) > 0

    @property
    def mean_latency_s(self) -> float:
        return safe_rate(self.latency_sum_s, self.fetches)

    @property
    def failure_rate(self) -> float:
        return safe_rate(self.failures, self.fetches + self.failures)

    @property
    def cache_hit_rate(self) -> float:
        return safe_rate(self.cache_hits, self.cache_hits + self.cache_misses)


@dataclass
class SourceHealth:
    """One source's current judgment plus the history that produced it."""

    name: str
    state: str = HEALTHY
    since_s: float = 0.0
    reasons: tuple = ()
    breaker_state: str = "closed"
    #: ``(at_s, from_state, to_state, reasons)`` in observation order
    transitions: list = field(default_factory=list)
    latency_baseline: Ewma = field(default_factory=Ewma)
    hit_rate_baseline: Ewma = field(default_factory=Ewma)
    clean_windows: int = 0
    windows_observed: int = 0

    def to_dict(self) -> dict:
        return {
            "source": self.name,
            "state": self.state,
            "since_s": round(self.since_s, 9),
            "reasons": list(self.reasons),
            "breaker": self.breaker_state,
            "transitions": len(self.transitions),
        }


class HealthModel:
    """Folds per-window source stats + breaker state into health states."""

    def __init__(
        self, policy: Optional[HealthPolicy] = None, alerts: Optional[AlertManager] = None
    ):
        self.policy = policy or HealthPolicy()
        self.alerts = alerts
        self.sources: dict[str, SourceHealth] = {}
        self._scoreboard_snapshot: dict[str, tuple] = {}

    def _entry(self, source: str) -> SourceHealth:
        name = source.lower()
        entry = self.sources.get(name)
        if entry is None:
            entry = self.sources[name] = SourceHealth(name)
        return entry

    # -- inputs ------------------------------------------------------------------

    def note_breaker(self, source: str, state: str, at_s: float) -> None:
        """Record a breaker transition (pushed by the resilience layer)."""
        entry = self._entry(source)
        entry.breaker_state = state
        if state == "open":
            # an open breaker is authoritative: don't wait for window close
            self._set_state(entry, DOWN, at_s, ("breaker_open",))

    def close_window(
        self, windows: dict, now: float, breaker_states: Optional[dict] = None
    ) -> None:
        """Judge every known source for one closed window.

        `windows` maps source name → `SourceWindow` (sources with no
        activity may be omitted; they are judged on breaker state and
        recovery counting only). `breaker_states` (source → state string)
        refreshes the cached breaker view when provided.
        """
        for source, state in (breaker_states or {}).items():
            self._entry(source).breaker_state = state
        for source in sorted(set(windows) | set(self.sources)):
            self._judge(self._entry(source), windows.get(source.lower()), now)

    def observe_scoreboard(
        self, scoreboard, now: float, breaker_states: Optional[dict] = None
    ) -> None:
        """Close a window straight from a `QueryScoreboard`.

        Computes per-source deltas against the previous call's cumulative
        stats, so callers that already keep a scoreboard (the shell, the
        benches) get windowed health without separate plumbing.
        """
        windows: dict[str, SourceWindow] = {}
        for name, stats in scoreboard.sources.items():
            previous = self._scoreboard_snapshot.get(
                name, (0, 0.0, 0, 0, 0)
            )
            fetches = stats.fetches - previous[0]
            window = SourceWindow(
                fetches=fetches,
                failures=stats.failures - previous[2],
                latency_sum_s=stats.seconds - previous[1],
                cache_hits=stats.cache_hits - previous[3],
                retries=stats.retries - previous[4],
            )
            self._scoreboard_snapshot[name] = (
                stats.fetches,
                stats.seconds,
                stats.failures,
                stats.cache_hits,
                stats.retries,
            )
            windows[name] = window
        self.close_window(windows, now, breaker_states=breaker_states)

    # -- the per-window judgment -------------------------------------------------

    def _judge(self, entry: SourceHealth, window: Optional[SourceWindow], now: float) -> None:
        policy = self.policy
        if entry.breaker_state == "open":
            self._set_state(entry, DOWN, now, ("breaker_open",))
            entry.clean_windows = 0
            return
        if window is None or not window.touched:
            # an untouched window says nothing bad; count toward recovery
            self._recover(entry, now)
            return
        entry.windows_observed += 1
        reasons = []
        failure_rate = window.failure_rate
        if failure_rate >= policy.failure_rate_down:
            reasons.append("failure_rate")
            self._update_baselines(entry, window, latency=False)
            self._set_state(entry, DOWN, now, tuple(reasons))
            entry.clean_windows = 0
            return
        if failure_rate >= policy.failure_rate_degraded:
            reasons.append("failure_rate")
        mean_latency = window.mean_latency_s
        baseline = entry.latency_baseline
        if window.fetches > 0 and baseline.count >= policy.min_baseline_windows:
            z = baseline.zscore(mean_latency)
            factor_breach = (
                baseline.mean > 0
                and mean_latency >= policy.latency_factor * baseline.mean
            )
            if z >= policy.latency_z or factor_breach:
                reasons.append("latency")
        hit_rate = window.cache_hit_rate
        hit_baseline = entry.hit_rate_baseline
        if (
            (window.cache_hits + window.cache_misses) > 0
            and hit_baseline.count >= policy.min_baseline_windows
            and hit_baseline.mean > 0.2
            and hit_rate < policy.cache_hit_drop * hit_baseline.mean
        ):
            reasons.append("cache_decay")
        if reasons:
            self._set_state(entry, DEGRADED, now, tuple(reasons))
            entry.clean_windows = 0
        else:
            self._update_baselines(entry, window, latency=window.fetches > 0)
            self._recover(entry, now)

    def _update_baselines(
        self, entry: SourceHealth, window: SourceWindow, latency: bool
    ) -> None:
        """Baselines learn only from windows judged clean for that signal."""
        if latency:
            entry.latency_baseline.update(window.mean_latency_s)
        if window.cache_hits + window.cache_misses > 0:
            entry.hit_rate_baseline.update(window.cache_hit_rate)

    def _recover(self, entry: SourceHealth, now: float) -> None:
        if entry.state == HEALTHY:
            return
        entry.clean_windows += 1
        if entry.clean_windows >= self.policy.recovery_windows:
            self._set_state(entry, HEALTHY, now, ("recovered",))
            entry.clean_windows = 0

    def _set_state(self, entry: SourceHealth, state: str, now: float, reasons: tuple) -> None:
        if entry.state != state:
            entry.transitions.append((now, entry.state, state, reasons))
            entry.state = state
            entry.since_s = now
        entry.reasons = reasons if state != HEALTHY else ()
        if self.alerts is not None:
            self.alerts.check(
                f"health.{entry.name}",
                state != HEALTHY,
                now,
                severity=_SEVERITY.get(state, WARNING),
                message=f"source {entry.name!r} {state}"
                + (f" ({', '.join(reasons)})" if state != HEALTHY else ""),
                state=state,
                reasons=list(reasons),
            )

    # -- reading -----------------------------------------------------------------

    def state(self, source: str) -> str:
        entry = self.sources.get(source.lower())
        return entry.state if entry is not None else HEALTHY

    def states(self) -> dict:
        return {name: entry.state for name, entry in sorted(self.sources.items())}

    @property
    def transition_count(self) -> int:
        return sum(len(entry.transitions) for entry in self.sources.values())

    def first_transition_to(self, source: str, state: str) -> Optional[tuple]:
        entry = self.sources.get(source.lower())
        if entry is None:
            return None
        for transition in entry.transitions:
            if transition[2] == state:
                return transition
        return None

    def to_dicts(self) -> list:
        return [self.sources[name].to_dict() for name in sorted(self.sources)]

    HEADERS = ("source", "state", "since_s", "breaker", "reasons", "transitions")

    def render(self) -> str:
        if not self.sources:
            return "health: no sources observed"
        rows = []
        for name in sorted(self.sources):
            entry = self.sources[name]
            rows.append(
                [
                    name,
                    entry.state.upper() if entry.state != HEALTHY else entry.state,
                    f"{entry.since_s:.3f}",
                    entry.breaker_state,
                    ",".join(entry.reasons) or "-",
                    str(len(entry.transitions)),
                ]
            )
        widths = [
            max(len(header), *(len(row[i]) for row in rows))
            for i, header in enumerate(self.HEADERS)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(self.HEADERS, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


__all__ = [
    "DEGRADED",
    "DOWN",
    "HEALTHY",
    "HealthModel",
    "HealthPolicy",
    "SourceHealth",
    "SourceWindow",
]
