"""Observe-only alerting: deduplicated firing/resolved alert records.

An `Alert` never *does* anything — the telemetry plane is strictly
observational (the resilience layer owns reactions like breakers and
failover). Alerts exist so an operator, a test, or a benchmark can ask
"what would have paged, and when?" on the simulated timeline.

`AlertManager.check(key, ...)` is idempotent per evaluation window: a
condition that stays true keeps one firing alert alive (deduplicated,
with an observation count), a condition that clears resolves it, and the
full firing→resolved history is retained in order for replay assertions.

Two standing rule kinds cover the plane's needs:

* `ThresholdRule` — value crosses a fixed bound (SLO burn rate ≥ 1,
  failure rate ≥ 50%);
* `ZScoreRule` — value is a statistical outlier against its own EWMA
  history (`repro.telemetry.stats.Ewma`), which catches a latency
  regression long before any fixed bound would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.stats import Ewma

FIRING = "firing"
RESOLVED = "resolved"

#: severities, in escalation order
INFO = "info"
WARNING = "warning"
CRITICAL = "critical"


@dataclass
class Alert:
    """One deduplicated alert through its firing→resolved lifecycle."""

    key: str
    severity: str
    message: str
    fired_at_s: float
    state: str = FIRING
    resolved_at_s: Optional[float] = None
    #: consecutive evaluations that re-confirmed the condition while firing
    observations: int = 1
    attrs: dict = field(default_factory=dict)

    @property
    def firing(self) -> bool:
        return self.state == FIRING

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "severity": self.severity,
            "message": self.message,
            "state": self.state,
            "fired_at_s": round(self.fired_at_s, 9),
            "resolved_at_s": (
                round(self.resolved_at_s, 9) if self.resolved_at_s is not None else None
            ),
            "observations": self.observations,
            "attrs": {str(k): self.attrs[k] for k in sorted(self.attrs)},
        }

    def describe(self) -> str:
        window = f"fired@{self.fired_at_s:.3f}s"
        if self.resolved_at_s is not None:
            window += f" resolved@{self.resolved_at_s:.3f}s"
        return f"[{self.severity}] {self.key}: {self.message} ({window})"


class AlertManager:
    """Owns every alert's lifecycle; one firing alert per key at a time."""

    def __init__(self):
        #: currently-firing alerts by key
        self.active: dict[str, Alert] = {}
        #: every alert ever fired, in firing order (resolved ones included)
        self.history: list[Alert] = []

    # -- lifecycle ---------------------------------------------------------------

    def check(
        self,
        key: str,
        condition: bool,
        now: float,
        severity: str = WARNING,
        message: str = "",
        **attrs,
    ) -> Optional[Alert]:
        """Evaluate one condition: fire, re-confirm, or resolve by `key`."""
        if condition:
            return self.fire(key, now, severity=severity, message=message, **attrs)
        self.resolve(key, now)
        return None

    def fire(
        self, key: str, now: float, severity: str = WARNING, message: str = "", **attrs
    ) -> Alert:
        """Raise (or re-confirm) the alert for `key`; dedup is by key."""
        alert = self.active.get(key)
        if alert is not None:
            alert.observations += 1
            if message:
                alert.message = message
            alert.attrs.update(attrs)
            return alert
        alert = Alert(
            key=key,
            severity=severity,
            message=message or key,
            fired_at_s=now,
            attrs=dict(attrs),
        )
        self.active[key] = alert
        self.history.append(alert)
        return alert

    def resolve(self, key: str, now: float) -> Optional[Alert]:
        alert = self.active.pop(key, None)
        if alert is None:
            return None
        alert.state = RESOLVED
        alert.resolved_at_s = now
        return alert

    # -- reading -----------------------------------------------------------------

    def firing(self) -> list:
        return [self.active[key] for key in sorted(self.active)]

    @property
    def fired_total(self) -> int:
        return len(self.history)

    @property
    def resolved_total(self) -> int:
        return sum(1 for alert in self.history if alert.state == RESOLVED)

    def first(self, key_prefix: str) -> Optional[Alert]:
        """Earliest-fired alert whose key starts with `key_prefix`."""
        for alert in self.history:
            if alert.key.startswith(key_prefix):
                return alert
        return None

    def to_dicts(self) -> list:
        return [alert.to_dict() for alert in self.history]

    def render(self) -> str:
        if not self.history:
            return "alerts: none recorded"
        lines = [
            f"alerts: {len(self.active)} firing, "
            f"{self.resolved_total} resolved, {self.fired_total} total"
        ]
        for alert in self.history:
            marker = "!" if alert.firing else " "
            lines.append(f" {marker} {alert.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Standing rules
# ---------------------------------------------------------------------------


@dataclass
class ThresholdRule:
    """Fire while ``value OP bound`` holds (OP from `op`: ">=", "<=")."""

    key: str
    bound: float
    op: str = ">="
    severity: str = WARNING
    message: str = ""

    def evaluate(self, value: float, manager: AlertManager, now: float) -> bool:
        if self.op == ">=":
            breached = value >= self.bound
        elif self.op == "<=":
            breached = value <= self.bound
        else:
            raise ValueError(f"unsupported threshold op {self.op!r}")
        manager.check(
            self.key,
            breached,
            now,
            severity=self.severity,
            message=(self.message or f"{self.key} {self.op} {self.bound}")
            + f" (value={value:.6g})",
            value=round(float(value), 9),
            bound=self.bound,
        )
        return breached


class ZScoreRule:
    """Fire when a value is `z_threshold` deviations above its own history.

    The baseline updates only on *non-breaching* observations, so a
    sustained regression keeps alerting instead of normalizing itself
    into the new baseline.
    """

    def __init__(
        self,
        key: str,
        z_threshold: float = 3.0,
        alpha: float = 0.3,
        min_samples: int = 3,
        severity: str = WARNING,
        message: str = "",
    ):
        self.key = key
        self.z_threshold = z_threshold
        self.severity = severity
        self.message = message
        self.baseline = Ewma(alpha=alpha, min_samples=min_samples)

    def evaluate(self, value: float, manager: AlertManager, now: float) -> bool:
        z = self.baseline.zscore(value)
        breached = z >= self.z_threshold
        manager.check(
            self.key,
            breached,
            now,
            severity=self.severity,
            message=(self.message or f"{self.key} z-score {z:.2f} >= {self.z_threshold}"),
            value=round(float(value), 9),
            zscore=round(z, 6),
            baseline_mean=round(self.baseline.mean, 9),
        )
        if not breached:
            self.baseline.update(value)
        return breached


__all__ = [
    "Alert",
    "AlertManager",
    "CRITICAL",
    "FIRING",
    "INFO",
    "RESOLVED",
    "ThresholdRule",
    "WARNING",
    "ZScoreRule",
]
