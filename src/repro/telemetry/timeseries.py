"""Aligned-window time series over the simulated clock.

A `TimeSeries` snapshots a `MetricsRegistry` into fixed-width windows
aligned to multiples of `window_s` on *simulated* time: window *k* covers
``[k*window_s, (k+1)*window_s)``. `roll(now)` closes every window whose
end has passed — including empty gap windows, so the series is a dense
timeline, not a sparse event log — and keeps the most recent `retention`
windows in a ring.

Counters and histograms are cumulative at the instrument; a closed
window stores both the cumulative snapshot and the per-window *delta*
(what happened inside the window), which is what rate-based rules (error
rate per window, burn rate) consume. Because the clock is a `SimClock`,
two runs of the same seeded workload produce byte-identical series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.instruments import MetricsRegistry, MonotonicCounter

DEFAULT_WINDOW_S = 1.0
DEFAULT_RETENTION = 240


@dataclass
class Window:
    """One closed window: cumulative snapshot + in-window deltas."""

    index: int
    start_s: float
    end_s: float
    #: cumulative instrument snapshot at close time
    values: dict = field(default_factory=dict)
    #: per-window change for counters and histogram counts/sums
    deltas: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_s": round(self.start_s, 9),
            "end_s": round(self.end_s, 9),
            "values": self.values,
            "deltas": self.deltas,
        }


class TimeSeries:
    """A ring buffer of aligned `Window`s over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock=None,
        window_s: float = DEFAULT_WINDOW_S,
        retention: int = DEFAULT_RETENTION,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        self.registry = registry
        self.clock = clock
        self.window_s = float(window_s)
        self.retention = max(1, int(retention))
        self.windows: list[Window] = []
        self._next_index = 0  # the first un-closed window
        self._last_cumulative: dict = {}

    # -- rolling -----------------------------------------------------------------

    def window_index(self, at_s: float) -> int:
        """The window containing simulated time `at_s`."""
        return int(math.floor(at_s / self.window_s))

    def roll(self, now: Optional[float] = None) -> int:
        """Close every window ending at or before `now`; returns how many.

        Gap windows (nothing happened) still close, with empty deltas —
        the dashboard's timeline has no holes, and EWMA baselines see the
        quiet periods too.
        """
        if now is None:
            if self.clock is None:
                raise ValueError("roll() needs `now` when no clock is attached")
            now = self.clock() if callable(self.clock) else self.clock.now()
        # Fast-forward across huge idle gaps (e.g. a wall clock handing us
        # epoch seconds): only the trailing `retention` windows survive the
        # ring anyway, so skip straight to them instead of looping per window.
        target = self.window_index(now)
        if target - self._next_index > self.retention:
            self._next_index = target - self.retention
        closed = 0
        while (self._next_index + 1) * self.window_s <= now:
            self._close_one()
            closed += 1
        return closed

    def _close_one(self) -> None:
        index = self._next_index
        cumulative = self.registry.snapshot()
        deltas = self._deltas(cumulative)
        self.windows.append(
            Window(
                index=index,
                start_s=index * self.window_s,
                end_s=(index + 1) * self.window_s,
                values=cumulative,
                deltas=deltas,
            )
        )
        if len(self.windows) > self.retention:
            del self.windows[: len(self.windows) - self.retention]
        self._last_cumulative = cumulative
        self._next_index = index + 1

    def _deltas(self, cumulative: dict) -> dict:
        """Per-window change of every counter/histogram vs the last close."""
        counters = {
            instrument.name + instrument.label_string()
            for instrument in self.registry.instruments()
            if isinstance(instrument, MonotonicCounter)
        }
        deltas: dict = {}
        for key, value in cumulative.items():
            previous = self._last_cumulative.get(key)
            if isinstance(value, dict):  # histogram snapshot
                prev_count = previous.get("count", 0) if isinstance(previous, dict) else 0
                prev_sum = previous.get("sum", 0.0) if isinstance(previous, dict) else 0.0
                count = value.get("count", 0) - prev_count
                if count:
                    deltas[key] = {
                        "count": count,
                        "sum": round(value.get("sum", 0.0) - prev_sum, 9),
                    }
            elif isinstance(value, (int, float)):
                if key in counters:
                    change = value - (previous if isinstance(previous, (int, float)) else 0.0)
                    if change:
                        deltas[key] = round(change, 9)
                elif previous is None or value != previous:
                    deltas[key] = round(value, 9)  # gauges: record level changes
        return deltas

    # -- reading -----------------------------------------------------------------

    @property
    def closed(self) -> int:
        return self._next_index

    def latest(self) -> Optional[Window]:
        return self.windows[-1] if self.windows else None

    def series(self, name: str, field_name: str = "", **labels) -> list:
        """Per-window delta series for one instrument.

        For histograms pass ``field_name`` (``"count"`` or ``"sum"``).
        Windows with no delta report 0 — the series is dense.
        """
        instrument = self.registry.get(name, **labels)
        flat = name + (instrument.label_string() if instrument is not None else "")
        out = []
        for window in self.windows:
            delta = window.deltas.get(flat)
            if delta is None:
                out.append(0.0)
            elif isinstance(delta, dict):
                out.append(float(delta.get(field_name or "count", 0.0)))
            else:
                out.append(float(delta))
        return out

    def to_dicts(self) -> list:
        return [window.to_dict() for window in self.windows]


__all__ = ["DEFAULT_RETENTION", "DEFAULT_WINDOW_S", "TimeSeries", "Window"]
