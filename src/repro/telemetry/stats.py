"""Small, dependency-free statistics helpers shared by the telemetry plane.

`percentile` is the one hardened nearest-rank implementation used across
the repo (telemetry histograms, the trace scoreboard, workload reports) —
one definition instead of per-module copies with divergent edge cases.

`Ewma` tracks an exponentially-weighted mean *and* variance, which is what
the health model's z-score rules compare fresh window observations
against: "is this window's latency an outlier versus this source's own
recent history?" — scoring sources by observed quality, not declarations.
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence, fraction: float) -> float:
    """Nearest-rank percentile of `values`.

    Hardened edge cases, all covered by direct unit tests:

    * empty input returns ``0.0`` (there is no sample to report);
    * a single sample is every percentile of itself;
    * ``fraction <= 0`` is the minimum, ``fraction >= 1`` the maximum
      (out-of-range fractions clamp instead of indexing out of bounds);
    * NaN fractions are rejected loudly rather than returning garbage.
    """
    if not values:
        return 0.0
    if isinstance(fraction, float) and math.isnan(fraction):
        raise ValueError("percentile fraction must not be NaN")
    ranked = sorted(values)
    if len(ranked) == 1:
        return ranked[0]
    if fraction <= 0.0:
        return ranked[0]
    if fraction >= 1.0:
        return ranked[-1]
    rank = min(len(ranked) - 1, max(0, math.ceil(fraction * len(ranked)) - 1))
    return ranked[rank]


class Ewma:
    """Exponentially-weighted mean/variance with a warm-up sample count.

    `alpha` is the weight of each fresh observation. Variance uses the
    standard EWMA recurrence (West 1979): the incremental update keeps the
    estimate deterministic and O(1) per observation. `zscore(x)` is 0
    until `min_samples` observations have landed, so the first windows of
    a run never alert purely for lack of history.
    """

    def __init__(self, alpha: float = 0.3, min_samples: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self.min_samples = max(1, min_samples)
        self.count = 0
        self.mean = 0.0
        self._variance = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self.count == 1:
            self.mean = value
            self._variance = 0.0
            return
        delta = value - self.mean
        increment = self.alpha * delta
        self.mean += increment
        self._variance = (1.0 - self.alpha) * (self._variance + delta * increment)

    @property
    def std(self) -> float:
        return math.sqrt(self._variance) if self._variance > 0 else 0.0

    def zscore(self, value: float, floor_std: float = 1e-9) -> float:
        """Standard score of `value` against the tracked history (0 cold)."""
        if self.count < self.min_samples:
            return 0.0
        spread = max(self.std, floor_std)
        return (float(value) - self.mean) / spread

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 9),
            "std": round(self.std, 9),
        }


def mean(values: Sequence, default: float = 0.0) -> float:
    """Arithmetic mean with an explicit empty-input default."""
    return sum(values) / len(values) if values else default


def safe_rate(numerator: float, denominator: float, default: float = 0.0) -> float:
    """`numerator / denominator` with a 0-denominator default."""
    return numerator / denominator if denominator else default


def clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


__all__ = ["Ewma", "clamp", "mean", "percentile", "safe_rate"]
