"""Business processes as sagas: forward steps, reverse compensation."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import ProcessError
from repro.eai.broker import MessageBroker


@dataclass
class Step:
    """One saga step.

    `action(context)` performs the work (updating a source, provisioning
    a resource, calling a service) and may return a value stored in the
    context under the step's name. `compensate(context)` undoes it if a
    later step fails. `condition` makes the step conditional (Carey's
    branching business processes). `duration_s` is the simulated duration
    — "insert employee" style processes run for hours or days, which the
    engine models without sleeping.
    """

    name: str
    action: Callable[[dict], object]
    compensate: Optional[Callable[[dict], None]] = None
    condition: Optional[Callable[[dict], bool]] = None
    duration_s: float = 0.0


@dataclass
class ProcessDefinition:
    """A named, ordered saga."""

    name: str
    steps: Sequence[Step]


@dataclass
class ProcessResult:
    process: str
    status: str  # "completed" | "compensated" | "compensation_failed"
    executed: list = field(default_factory=list)
    compensated: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    error: Optional[str] = None
    simulated_seconds: float = 0.0
    context: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.status == "completed"


class ProcessEngine:
    """Runs process definitions with saga-style compensation.

    On a step failure, compensations of all previously completed steps run
    in reverse order; the process result records exactly what happened.
    Lifecycle events are published to the broker under
    `process.<name>.<event>` so other systems can react (the EAI way of
    keeping applications in sync).
    """

    def __init__(self, broker: Optional[MessageBroker] = None):
        self.broker = broker or MessageBroker()
        self.history: list[ProcessResult] = []

    def run(self, definition: ProcessDefinition, context: Optional[dict] = None) -> ProcessResult:
        context = dict(context or {})
        result = ProcessResult(definition.name, "completed", context=context)
        self.broker.publish(f"process.{definition.name}.started", {"context": dict(context)})
        completed: list[Step] = []
        try:
            for step in definition.steps:
                if step.condition is not None and not step.condition(context):
                    result.skipped.append(step.name)
                    continue
                value = step.action(context)
                context[step.name] = value
                result.executed.append(step.name)
                result.simulated_seconds += step.duration_s
                completed.append(step)
                self.broker.publish(
                    f"process.{definition.name}.step",
                    {"step": step.name, "status": "ok"},
                )
        except Exception as exc:  # noqa: BLE001 - any step failure triggers the saga
            result.error = f"{type(exc).__name__}: {exc}"
            result.status = "compensated"
            self.broker.publish(
                f"process.{definition.name}.failed",
                {"error": result.error, "at_step": len(result.executed)},
            )
            for step in reversed(completed):
                if step.compensate is None:
                    continue
                try:
                    step.compensate(context)
                    result.compensated.append(step.name)
                except Exception as comp_exc:  # noqa: BLE001
                    result.status = "compensation_failed"
                    result.error += f"; compensation of {step.name!r} failed: {comp_exc}"
                    break
        if result.status == "completed":
            self.broker.publish(
                f"process.{definition.name}.completed", {"steps": list(result.executed)}
            )
        else:
            self.broker.publish(
                f"process.{definition.name}.compensated",
                {"steps": list(result.compensated)},
            )
        self.history.append(result)
        return result

    def run_or_raise(self, definition: ProcessDefinition, context: Optional[dict] = None) -> ProcessResult:
        result = self.run(definition, context)
        if not result.succeeded:
            raise ProcessError(f"process {definition.name!r} failed: {result.error}")
        return result
