"""EAI: message brokering and business-process (saga) execution.

Carey's §4 argument: EII handles the read side; updates like "insert
employee into company" are *business processes* — long-running,
non-transactional, requiring "compensation capabilities in the event of a
transaction step failure". This package supplies that other half:
a topic-based `MessageBroker` and a `ProcessEngine` that runs
`ProcessDefinition`s with reverse-order compensation on failure, so the
E8 experiment can compare hand-written EAI plans against EII views.
"""

from repro.eai.broker import Message, MessageBroker
from repro.eai.process import (
    ProcessDefinition,
    ProcessEngine,
    ProcessResult,
    Step,
)

__all__ = [
    "Message",
    "MessageBroker",
    "ProcessDefinition",
    "ProcessEngine",
    "ProcessResult",
    "Step",
]
