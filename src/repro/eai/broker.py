"""A minimal topic-based message broker (synchronous delivery)."""

from __future__ import annotations

import fnmatch
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Message:
    """One published message: a topic plus a payload dict."""

    topic: str
    payload: dict
    sequence: int


class MessageBroker:
    """Publish/subscribe hub for application integration events.

    Subscriptions match topics with `fnmatch` wildcards
    (`"employee.*"` receives `"employee.created"`). Delivery is synchronous
    and in subscription order; handler exceptions propagate to the
    publisher (the process engine treats them as step failures). All
    traffic is kept in `log` for auditing and tests.
    """

    def __init__(self):
        self._subscriptions: list[tuple[str, Callable[[Message], None]]] = []
        self._sequence = itertools.count(1)
        self.log: list[Message] = []

    def subscribe(self, pattern: str, handler: Callable[[Message], None]) -> None:
        self._subscriptions.append((pattern, handler))

    def publish(self, topic: str, payload: dict) -> Message:
        message = Message(topic, dict(payload), next(self._sequence))
        self.log.append(message)
        for pattern, handler in self._subscriptions:
            if fnmatch.fnmatch(topic, pattern):
                handler(message)
        return message

    def messages_on(self, pattern: str) -> list[Message]:
        return [m for m in self.log if fnmatch.fnmatch(m.topic, pattern)]
