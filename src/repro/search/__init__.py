"""Enterprise search across structured and unstructured data, with security.

Sikka's §8 scenario: Jamie must find *everything* about a customer —
orders and finances (structured), support interactions (semi-structured),
news and brochures (documents) — without caring which source holds what,
and "ensuring that only authorized users get access to the information
they seek". `EnterpriseSearch` federates a tf-idf inverted index over
documents with keyword search over structured relations, fuses the
rankings (reciprocal-rank fusion: the "common semantic framework for
integrating retrieval results from algorithms that operate on different
data types"), and enforces per-item ACLs before results leave the engine.
"""

from repro.search.index import InvertedIndex, tokenize_text
from repro.search.federated import EnterpriseSearch, SearchHit

__all__ = ["EnterpriseSearch", "InvertedIndex", "SearchHit", "tokenize_text"]
