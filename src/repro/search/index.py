"""A small tf-idf inverted index with cosine ranking."""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Iterable, Optional

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or the to was with".split()
)


def tokenize_text(text: str) -> list[str]:
    """Lower-case alphanumeric tokens minus stopwords."""
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if token not in _STOPWORDS
    ]


class InvertedIndex:
    """Documents -> postings with tf-idf cosine scoring."""

    def __init__(self):
        self._postings: dict[str, dict] = {}  # term -> {doc_id: tf}
        self._doc_lengths: dict = {}  # doc_id -> token count
        self._docs: dict = {}  # doc_id -> original text

    def add(self, doc_id, text: str) -> None:
        if doc_id in self._docs:
            self.remove(doc_id)
        tokens = tokenize_text(text)
        self._docs[doc_id] = text
        self._doc_lengths[doc_id] = len(tokens) or 1
        for term, count in Counter(tokens).items():
            self._postings.setdefault(term, {})[doc_id] = count

    def remove(self, doc_id) -> None:
        if doc_id not in self._docs:
            return
        del self._docs[doc_id]
        del self._doc_lengths[doc_id]
        for postings in self._postings.values():
            postings.pop(doc_id, None)

    def __len__(self):
        return len(self._docs)

    def __contains__(self, doc_id):
        return doc_id in self._docs

    def text_of(self, doc_id) -> Optional[str]:
        return self._docs.get(doc_id)

    def search(self, query: str, limit: int = 20) -> list[tuple]:
        """Ranked `(doc_id, score)` for the query (tf-idf dot product)."""
        terms = tokenize_text(query)
        if not terms or not self._docs:
            return []
        n_docs = len(self._docs)
        scores: dict = {}
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = math.log(1.0 + n_docs / len(postings))
            for doc_id, tf in postings.items():
                weight = (tf / self._doc_lengths[doc_id]) * idf
                scores[doc_id] = scores.get(doc_id, 0.0) + weight
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:limit]

    def snippet(self, doc_id, query: str, width: int = 60) -> str:
        """A short context window around the first query-term occurrence."""
        text = self._docs.get(doc_id, "")
        lowered = text.lower()
        for term in tokenize_text(query):
            position = lowered.find(term)
            if position >= 0:
                start = max(position - width // 2, 0)
                return text[start : start + width].strip()
        return text[:width].strip()
