"""Federated search with rank fusion and ACL enforcement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.relation import Relation
from repro.search.index import InvertedIndex, tokenize_text

#: Reciprocal-rank-fusion constant (standard value from the RRF paper).
RRF_K = 60.0


@dataclass(frozen=True)
class SearchHit:
    """One unified search result."""

    collection: str
    key: object
    score: float
    snippet: str
    kind: str  # "document" | "structured"


@dataclass
class _StructuredCollection:
    name: str
    provider: Callable[[], Relation]
    key_field: str
    text_fields: Sequence[str]
    acl: Optional[frozenset]  # groups allowed; None = public


@dataclass
class _DocumentCollection:
    name: str
    index: InvertedIndex
    acl_of: dict  # doc_id -> frozenset of groups (missing = public)


class EnterpriseSearch:
    """Search across document corpora and structured relations.

    Structured collections are searched by keyword containment over their
    declared text fields (scored by matched-term fraction); document
    collections by tf-idf. Per-collection rankings are merged with
    reciprocal-rank fusion so differently-scaled scores combine sanely.
    Security: an item is visible if it is public or shares a group with
    the caller's principal.
    """

    def __init__(self, ontology=None):
        self._documents: dict[str, _DocumentCollection] = {}
        self._structured: dict[str, _StructuredCollection] = {}
        #: optional repro.metadata.Ontology used for synonym query expansion
        self.ontology = ontology

    def expand_query(self, query: str) -> str:
        """Append ontology synonyms of each query term (semantic recall).

        "It's all about context" (Pollock §6): a search for "client" also
        matches documents saying "customer" once both name one concept.
        """
        if self.ontology is None:
            return query
        extra: list[str] = []
        for token in tokenize_text(query):
            for name in self.ontology.synonyms_of(token):
                if name != token and name not in extra:
                    extra.append(name)
        if not extra:
            return query
        return query + " " + " ".join(extra)

    # -- registration ------------------------------------------------------------

    def register_documents(self, name: str) -> InvertedIndex:
        collection = _DocumentCollection(name, InvertedIndex(), {})
        self._documents[name] = collection
        return collection.index

    def add_document(
        self,
        collection: str,
        doc_id,
        text: str,
        groups: Optional[Sequence[str]] = None,
    ) -> None:
        entry = self._documents[collection]
        entry.index.add(doc_id, text)
        if groups is not None:
            entry.acl_of[doc_id] = frozenset(groups)

    def register_structured(
        self,
        name: str,
        provider: Callable[[], Relation],
        key_field: str,
        text_fields: Sequence[str],
        groups: Optional[Sequence[str]] = None,
    ) -> None:
        self._structured[name] = _StructuredCollection(
            name,
            provider,
            key_field,
            list(text_fields),
            frozenset(groups) if groups is not None else None,
        )

    def collections(self) -> list[str]:
        return sorted(list(self._documents) + list(self._structured))

    # -- search -------------------------------------------------------------------

    def search(
        self,
        query: str,
        principal_groups: Sequence[str] = (),
        limit: int = 10,
    ) -> list[SearchHit]:
        groups = frozenset(principal_groups)
        query = self.expand_query(query)
        rankings: list[list[SearchHit]] = []
        for collection in self._documents.values():
            rankings.append(self._search_documents(collection, query, groups))
        for collection in self._structured.values():
            rankings.append(self._search_structured(collection, query, groups))
        return _fuse(rankings, limit)

    def _search_documents(
        self, collection: _DocumentCollection, query: str, groups: frozenset
    ) -> list[SearchHit]:
        hits = []
        for doc_id, score in collection.index.search(query, limit=50):
            acl = collection.acl_of.get(doc_id)
            if acl is not None and not (acl & groups):
                continue
            hits.append(
                SearchHit(
                    collection.name,
                    doc_id,
                    score,
                    collection.index.snippet(doc_id, query),
                    "document",
                )
            )
        return hits

    def _search_structured(
        self, collection: _StructuredCollection, query: str, groups: frozenset
    ) -> list[SearchHit]:
        if collection.acl is not None and not (collection.acl & groups):
            return []
        terms = tokenize_text(query)
        if not terms:
            return []
        relation = collection.provider()
        key_pos = relation.schema.index_of(collection.key_field)
        text_positions = [
            relation.schema.index_of(field) for field in collection.text_fields
        ]
        scored = []
        for row in relation.rows:
            haystack = " ".join(
                str(row[p]) for p in text_positions if row[p] is not None
            ).lower()
            matched = sum(1 for term in terms if term in haystack)
            if matched:
                snippet = haystack[:60]
                scored.append(
                    SearchHit(
                        collection.name,
                        row[key_pos],
                        matched / len(terms),
                        snippet,
                        "structured",
                    )
                )
        scored.sort(key=lambda hit: (-hit.score, str(hit.key)))
        return scored[:50]


def _fuse(rankings: list, limit: int) -> list[SearchHit]:
    """Reciprocal-rank fusion across per-collection rankings."""
    fused: dict = {}
    best_hit: dict = {}
    for ranking in rankings:
        for rank, hit in enumerate(ranking, start=1):
            key = (hit.collection, hit.key)
            fused[key] = fused.get(key, 0.0) + 1.0 / (RRF_K + rank)
            if key not in best_hit:
                best_hit[key] = hit
    merged = [
        SearchHit(
            best_hit[key].collection,
            best_hit[key].key,
            score,
            best_hit[key].snippet,
            best_hit[key].kind,
        )
        for key, score in fused.items()
    ]
    merged.sort(key=lambda hit: (-hit.score, hit.collection, str(hit.key)))
    return merged[:limit]
