"""Cost-based join-order search.

Contiguous trees of INNER joins are flattened into (inputs, predicates) and
re-ordered: exhaustive dynamic programming over connected subsets for up to
`DP_LIMIT` inputs, greedy smallest-intermediate-result beyond that. LEFT
joins act as barriers — their subtrees are optimized independently but the
outer join itself is never commuted.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.engine.cost import CostModel, PlanCost
from repro.engine.logical import LogicalFilter, LogicalJoin, LogicalPlan
from repro.sql.ast import Expr
from repro.sql.exprutil import (
    column_refs,
    conjoin,
    referenced_qualifiers,
    split_conjuncts,
)

DP_LIMIT = 8
CROSS_JOIN_PENALTY = 1e6


def reorder_joins(
    plan: LogicalPlan, cost_model: CostModel, dp_limit: int = DP_LIMIT
) -> LogicalPlan:
    """Recursively reorder every maximal inner-join region of the plan.

    `dp_limit` is the largest input count still searched exhaustively;
    larger regions fall back to the greedy heuristic. The whole pass runs
    under one estimate memo scope — the search estimates shared subtrees
    once instead of once per candidate containing them.
    """
    with cost_model.memo_scope():
        return _reorder(plan, cost_model, dp_limit)


def _reorder(plan: LogicalPlan, cost_model: CostModel, dp_limit: int) -> LogicalPlan:
    if isinstance(plan, LogicalJoin) and plan.kind == "INNER":
        inputs, predicates = _flatten(plan)
        inputs = [_reorder(node, cost_model, dp_limit) for node in inputs]
        if len(inputs) <= 1:
            return _wrap(inputs[0], predicates)
        ordered = _search(inputs, predicates, cost_model, dp_limit)
        return ordered
    children = [_reorder(child, cost_model, dp_limit) for child in plan.children]
    return plan.with_children(children) if children else plan


def _is_inner_join_region(node: LogicalPlan) -> bool:
    while isinstance(node, LogicalFilter):
        node = node.child
    return isinstance(node, LogicalJoin) and node.kind == "INNER"


def _flatten(plan: LogicalPlan):
    """Flatten a maximal INNER-join tree into leaf inputs and predicates.

    Only filters sitting *above* further inner joins are hoisted into the
    shared predicate pool. A filter directly on a leaf (where predicate
    pushdown put it) stays attached to that input, so the search costs the
    *filtered* cardinality — hoisting it would make every single-table
    selection invisible to join ordering, since leaf states never apply
    pool predicates.
    """
    inputs: list[LogicalPlan] = []
    predicates: list[Expr] = []

    def recurse(node: LogicalPlan):
        if isinstance(node, LogicalJoin) and node.kind == "INNER":
            recurse(node.left)
            recurse(node.right)
            if node.condition is not None:
                predicates.extend(split_conjuncts(node.condition))
        elif isinstance(node, LogicalFilter) and _is_inner_join_region(node.child):
            predicates.extend(split_conjuncts(node.predicate))
            recurse(node.child)
        else:
            inputs.append(node)

    recurse(plan)
    return inputs, predicates


def _qualifiers(plan: LogicalPlan) -> frozenset:
    return frozenset((column.qualifier or "").lower() for column in plan.schema)


def _predicate_applies(predicate: Expr, quals: frozenset, schemas) -> bool:
    """True if every column the predicate references resolves in `schemas`."""
    refs = column_refs(predicate)
    for ref in refs:
        if ref.qualifier is not None:
            if ref.qualifier.lower() not in quals:
                return False
        else:
            if not any(schema.has(ref.name) for schema in schemas):
                return False
    return True


class _JoinState:
    """A candidate sub-join during the search."""

    __slots__ = ("plan", "mask", "cost")

    def __init__(self, plan: LogicalPlan, mask: int, cost: PlanCost):
        self.plan = plan
        self.mask = mask
        self.cost = cost


def _search(inputs, predicates, cost_model: CostModel, dp_limit: int) -> LogicalPlan:
    if len(inputs) <= max(dp_limit, 1):
        return _dp(inputs, predicates, cost_model)
    return _greedy(inputs, predicates, cost_model)


def _plan_key(plan: LogicalPlan) -> str:
    """Deterministic tie-break key: the plan's label path.

    Equal-cost candidates (symmetric sides, duplicated inputs) would
    otherwise be decided by enumeration order — stable within one process
    but fragile under refactoring; the lexicographically smallest rendering
    wins instead.
    """
    return "|".join(node.label() for node in plan.walk())


def _join_candidates(left: _JoinState, right: _JoinState, predicates, used, cost_model):
    """Build the join of two states, consuming every now-applicable predicate."""
    quals = _qualifiers(left.plan) | _qualifiers(right.plan)
    schemas = (left.plan.schema, right.plan.schema)
    joined_schema_probe = left.plan.schema.concat(right.plan.schema)
    applicable = []
    for index, predicate in enumerate(predicates):
        if index in used:
            continue
        if _predicate_applies(predicate, quals, (joined_schema_probe,)):
            applicable.append(index)
    condition = conjoin([predicates[i] for i in applicable])
    plan = LogicalJoin(left.plan, right.plan, "INNER", condition)
    cost = cost_model.estimate(plan)
    penalty = CROSS_JOIN_PENALTY if condition is None else 0.0
    total = PlanCost(cost.rows, cost.cost + penalty, cost.column_stats)
    return plan, total, set(applicable)


def _dp(inputs, predicates, cost_model: CostModel) -> LogicalPlan:
    n = len(inputs)
    best: dict[int, tuple] = {}  # mask -> (cost_value, plan, used_pred_indexes, est)
    for i, node in enumerate(inputs):
        est = cost_model.estimate(node)
        best[1 << i] = (est.cost, node, frozenset(), est)

    for size in range(2, n + 1):
        for subset in combinations(range(n), size):
            mask = 0
            for i in subset:
                mask |= 1 << i
            candidates = []
            # Split the subset into two non-empty halves already solved.
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other and sub in best and other in best:
                    candidates.append((sub, other))
                sub = (sub - 1) & mask
            entry = None
            for left_mask, right_mask in candidates:
                left_cost, left_plan, left_used, left_est = best[left_mask]
                right_cost, right_plan, right_used, right_est = best[right_mask]
                used = left_used | right_used
                for a, b in ((left_plan, right_plan), (right_plan, left_plan)):
                    a_state = _JoinState(a, 0, left_est)
                    b_state = _JoinState(b, 0, right_est)
                    plan, cost, consumed = _join_candidates(
                        a_state, b_state, predicates, used, cost_model
                    )
                    total = cost.cost
                    if (
                        entry is None
                        or total < entry[0]
                        or (total == entry[0] and _plan_key(plan) < _plan_key(entry[1]))
                    ):
                        entry = (total, plan, frozenset(used | consumed), cost)
            if entry is not None:
                best[mask] = entry

    full = (1 << n) - 1
    _, plan, used, _ = best[full]
    leftover = [p for i, p in enumerate(predicates) if i not in used]
    return _wrap(plan, leftover)


def _greedy(inputs, predicates, cost_model: CostModel) -> LogicalPlan:
    states = []
    for node in inputs:
        states.append(_JoinState(node, 0, cost_model.estimate(node)))
    remaining = list(range(len(predicates)))
    used: set[int] = set()

    while len(states) > 1:
        best_pair: Optional[tuple] = None
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                plan, cost, consumed = _join_candidates(
                    states[i], states[j], predicates, used, cost_model
                )
                # (i, j) makes equal-cost choices explicit: first pair in
                # input order wins, deterministically.
                key = (cost.rows, cost.cost, i, j)
                if best_pair is None or key < best_pair[0]:
                    best_pair = (key, i, j, plan, cost, consumed)
        _, i, j, plan, cost, consumed = best_pair
        used |= consumed
        new_state = _JoinState(plan, 0, cost)
        states = [s for k, s in enumerate(states) if k not in (i, j)]
        states.append(new_state)

    leftover = [p for i, p in enumerate(predicates) if i not in used]
    return _wrap(states[0].plan, leftover)


def _wrap(plan: LogicalPlan, predicates) -> LogicalPlan:
    predicate = conjoin(predicates)
    if predicate is None:
        return plan
    return LogicalFilter(plan, predicate)
