"""The local engine: parse → bind → optimize → lower → execute.

`LocalEngine` is the per-source query processor. Every `RelationalSource` in
the federation runs one, which is how the system realizes the panel's advice
(Bitton, §3) to push component queries down to "mature database servers"
rather than re-implementing their work at the mediator.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import PlanError
from repro.common.relation import Relation
from repro.engine.cost import CostModel
from repro.engine.logical import (
    LogicalAggregate,
    LogicalAlias,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from repro.engine.physical import (
    DistinctOp,
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    IndexEqScan,
    IndexRangeScan,
    LimitOp,
    NestedLoopJoinOp,
    PhysicalOp,
    ProjectOp,
    RelabelOp,
    SeqScan,
    SortOp,
    UnionAllOp,
)
from repro.engine.planner import DatabaseResolver, bind_select
from repro.engine.rewrite import optimize_logical
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Delete,
    Expr,
    Insert,
    Literal,
    Select,
    Star,
    UnionSelect,
    Update,
)
from repro.sql.eval import compile_expr, compile_predicate
from repro.sql.exprutil import conjoin, equi_join_sides, split_conjuncts
from repro.sql.parser import parse


class LocalEngine:
    """Cost-based SQL engine over one `repro.storage.Database`."""

    def __init__(
        self, db, optimize: bool = True, validate: bool = False, tracer=None
    ):
        self.db = db
        self.optimize = optimize
        #: opt-in strict mode: run static semantic analysis before binding
        #: and raise `AnalysisError` (with every defect listed) instead of
        #: failing on the binder's first complaint
        self.validate = validate
        #: optional `repro.trace` tracer; local execution is instantaneous
        #: on the simulated clock, so its spans are structural (plan shape,
        #: row counts) rather than timed
        self.tracer = tracer
        self.resolver = DatabaseResolver(db)
        self.cost_model = CostModel(_StatsAdapter(db))

    # -- public API ---------------------------------------------------------------

    def query(self, query: Union[str, Select, LogicalPlan]) -> Relation:
        """Run a SELECT (text, AST or logical plan) and return its result."""
        trace = self.tracer.begin("local_query") if self.tracer is not None else None
        if trace is None:
            physical = self.physical_plan(query)
            return physical.relation()
        plan_span = trace.root.child("plan", category="plan")
        physical = self.physical_plan(query)
        plan_span.set(operator=physical.explain_label())
        execute_span = trace.root.child("execute", category="execute")
        relation = physical.relation()
        execute_span.set(rows=len(relation))
        trace.root.set(rows=len(relation))
        self.tracer.finish(trace)
        return relation

    def explain(self, query: Union[str, Select, LogicalPlan]) -> str:
        """EXPLAIN: the optimized logical plan and the physical operator tree."""
        logical = self.logical_plan(query)
        physical = self.lower(logical)
        estimate = self.cost_model.estimate(logical)
        header = f"estimated rows={estimate.rows:.0f} cost={estimate.cost:.0f}"
        return "\n".join([header, logical.pretty(), physical.explain()])

    def execute(self, statement: Union[str, Insert, Update, Delete]) -> int:
        """Run a DML statement, returning the affected-row count."""
        if isinstance(statement, str):
            statement = parse(statement)
        if self.validate:
            self._validate_statement(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Update):
            return self._update(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        raise PlanError(f"execute() cannot run {type(statement).__name__}")

    def logical_plan(self, query: Union[str, Select, LogicalPlan]) -> LogicalPlan:
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            statement = parse(query)
            if not isinstance(statement, (Select, UnionSelect)):
                raise PlanError("query() only runs SELECT; use execute() for DML")
            query = statement
        if isinstance(query, (Select, UnionSelect)):
            if self.validate:
                self._validate_statement(query, text)
            query = bind_select(query, self.resolver)
        if self.optimize:
            query = optimize_logical(query, self.cost_model)
        return query

    def _validate_statement(self, statement, text: Optional[str] = None) -> None:
        """Strict mode: collect every semantic defect, then raise typed."""
        # lazy import: repro.analysis pulls in federation plan nodes
        from repro.analysis import AnalysisError, AnalysisReport, analyze_statement

        report = AnalysisReport()
        report.extend(analyze_statement(statement, self.resolver, text))
        if not report.ok:
            raise AnalysisError(report)

    def physical_plan(self, query: Union[str, Select, LogicalPlan]) -> PhysicalOp:
        return self.lower(self.logical_plan(query))

    # -- DML ----------------------------------------------------------------------

    def _insert(self, statement: Insert) -> int:
        table = self.db.table(statement.table)
        count = 0
        for row_exprs in statement.rows:
            values = [_const(expr) for expr in row_exprs]
            if statement.columns:
                table.insert_dict(dict(zip(statement.columns, values)))
            else:
                table.insert(values)
            count += 1
        return count

    def _update(self, statement: Update) -> int:
        table = self.db.table(statement.table)
        schema = table.schema
        predicate = (
            compile_predicate(statement.where, schema)
            if statement.where is not None
            else (lambda row: True)
        )
        assignment_fns = [
            (schema.index_of(name), compile_expr(value, schema))
            for name, value in statement.assignments
        ]

        def updater(row):
            new_row = list(row)
            for position, fn in assignment_fns:
                new_row[position] = fn(row)
            return new_row

        return table.update_where(predicate, updater)

    def _delete(self, statement: Delete) -> int:
        table = self.db.table(statement.table)
        predicate = (
            compile_predicate(statement.where, table.schema)
            if statement.where is not None
            else (lambda row: True)
        )
        return table.delete_where(predicate)

    # -- lowering --------------------------------------------------------------------

    def lower(self, plan: LogicalPlan) -> PhysicalOp:
        if isinstance(plan, LogicalScan):
            return SeqScan(self.db.table(plan.table_name), plan.binding)

        if isinstance(plan, LogicalFilter):
            return self._lower_filter(plan)

        if isinstance(plan, LogicalProject):
            child = self.lower(plan.child)
            fns = [compile_expr(item.expr, child.schema) for item in plan.items]
            description = ", ".join(str(item) for item in plan.items)
            return ProjectOp(child, fns, plan.schema, description)

        if isinstance(plan, LogicalJoin):
            return self._lower_join(plan)

        if isinstance(plan, LogicalAggregate):
            child = self.lower(plan.child)
            group_fns = [compile_expr(expr, child.schema) for expr in plan.group_exprs]
            agg_specs = []
            for call in plan.aggregates:
                if len(call.args) == 1 and isinstance(call.args[0], Star):
                    agg_specs.append((call.name, call.distinct, None))
                elif len(call.args) == 1:
                    agg_specs.append(
                        (call.name, call.distinct, compile_expr(call.args[0], child.schema))
                    )
                else:
                    raise PlanError(f"aggregate {call.name} takes exactly one argument")
            return HashAggregateOp(child, group_fns, agg_specs, plan.schema, plan.label())

        if isinstance(plan, LogicalSort):
            child = self.lower(plan.child)
            key_fns = [
                compile_expr(item.expr, child.schema) for item in plan.order_items
            ]
            ascendings = [item.ascending for item in plan.order_items]
            description = ", ".join(str(item) for item in plan.order_items)
            return SortOp(child, key_fns, ascendings, description)

        if isinstance(plan, LogicalLimit):
            return LimitOp(self.lower(plan.child), plan.limit)

        if isinstance(plan, LogicalDistinct):
            return DistinctOp(self.lower(plan.child))

        if isinstance(plan, LogicalUnion):
            return UnionAllOp([self.lower(child) for child in plan.inputs])

        if isinstance(plan, LogicalAlias):
            return RelabelOp(self.lower(plan.child), plan.schema, plan.label())

        # Extension nodes (federation) lower themselves.
        lowerer = getattr(plan, "lower_physical", None)
        if lowerer is not None:
            return lowerer(self)
        raise PlanError(f"cannot lower {type(plan).__name__}")

    def _lower_filter(self, plan: LogicalFilter) -> PhysicalOp:
        """Lower Filter(Scan) through an index when one matches a conjunct."""
        if isinstance(plan.child, LogicalScan):
            table = self.db.table(plan.child.table_name)
            binding = plan.child.binding
            conjuncts = split_conjuncts(plan.predicate)
            chosen = self._choose_index_access(table, binding, conjuncts)
            if chosen is not None:
                access, remaining = chosen
                if remaining:
                    predicate = conjoin(remaining)
                    fn = compile_predicate(predicate, access.schema)
                    return FilterOp(access, fn, str(predicate))
                return access
        child = self.lower(plan.child)
        fn = compile_predicate(plan.predicate, child.schema)
        return FilterOp(child, fn, str(plan.predicate))

    def _choose_index_access(self, table, binding, conjuncts):
        """Pick an index-backed access path for one of the conjuncts."""
        from repro.storage.index import HashIndex, SortedIndex

        for i, conjunct in enumerate(conjuncts):
            if not isinstance(conjunct, BinaryOp):
                continue
            column, value, op = _index_shape(conjunct, binding)
            if column is None:
                continue
            index = table.index_on(column)
            if index is None:
                continue
            remaining = conjuncts[:i] + conjuncts[i + 1 :]
            if op == "=":
                return IndexEqScan(table, binding, column, value), remaining
            if isinstance(index, SortedIndex) and op in ("<", "<=", ">", ">="):
                if op in ("<", "<="):
                    access = IndexRangeScan(
                        table, binding, column, high=value, include_high=op == "<="
                    )
                else:
                    access = IndexRangeScan(
                        table, binding, column, low=value, include_low=op == ">="
                    )
                return access, remaining
        return None

    def _lower_join(self, plan: LogicalJoin) -> PhysicalOp:
        left = self.lower(plan.left)
        right = self.lower(plan.right)
        description = str(plan.condition) if plan.condition is not None else "cross"
        if plan.condition is None:
            return NestedLoopJoinOp(left, right, None, plan.kind, description)

        left_positions: list[int] = []
        right_positions: list[int] = []
        residual: list[Expr] = []
        for conjunct in split_conjuncts(plan.condition):
            sides = equi_join_sides(conjunct)
            placed = False
            if sides is not None:
                a, b = sides
                for first, second in ((a, b), (b, a)):
                    if plan.left.schema.has(first.name, first.qualifier) and \
                            plan.right.schema.has(second.name, second.qualifier):
                        left_positions.append(
                            plan.left.schema.index_of(first.name, first.qualifier)
                        )
                        right_positions.append(
                            plan.right.schema.index_of(second.name, second.qualifier)
                        )
                        placed = True
                        break
            if not placed:
                residual.append(conjunct)

        if left_positions:
            residual_fn = None
            if residual:
                residual_fn = compile_predicate(conjoin(residual), plan.schema)
            return HashJoinOp(
                left,
                right,
                left_positions,
                right_positions,
                plan.kind,
                residual_fn,
                description,
            )
        condition_fn = compile_predicate(plan.condition, plan.schema)
        return NestedLoopJoinOp(left, right, condition_fn, plan.kind, description)


class _StatsAdapter:
    """Expose Database.stats_for under the CostModel's protocol name."""

    def __init__(self, db):
        self.db = db

    def table_stats(self, table_name: str):
        return self.db.stats_for(table_name)


def _const(expr: Expr):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp) or isinstance(expr, ColumnRef):
        raise PlanError("INSERT values must be literals")
    raise PlanError(f"INSERT values must be literals, got {expr}")


def _index_shape(conjunct: BinaryOp, binding: str):
    """Match `col <op> literal` where col belongs to `binding`."""
    mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if conjunct.op not in mirror:
        return None, None, None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, value, op = left, right.value, conjunct.op
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        column, value, op = right, left.value, mirror[conjunct.op]
    else:
        return None, None, None
    if column.qualifier is not None and column.qualifier.lower() != binding.lower():
        return None, None, None
    return column.name, value, op
