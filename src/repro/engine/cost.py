"""Cardinality estimation and the cost model.

The estimator walks a logical plan bottom-up, carrying per-column statistics
keyed by `(qualifier, name)` so that filter and join selectivities can use
real distinct counts and histograms collected by the storage layer. The
cost unit is "one row touched"; operators add their classical multipliers.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.logical import (
    LogicalAggregate,
    LogicalAlias,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sql.exprutil import equi_join_sides, split_conjuncts
from repro.storage.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStats,
    TableStats,
)

DEFAULT_NDV = 10.0


@dataclass
class PlanCost:
    """Estimated output rows and cumulative cost of a (sub)plan."""

    rows: float
    cost: float
    column_stats: dict = field(default_factory=dict)  # (qual?, name) lower -> ColumnStats

    def stat_for(self, ref: ColumnRef) -> Optional[ColumnStats]:
        key = ((ref.qualifier or "").lower(), ref.name.lower())
        direct = self.column_stats.get(key)
        if direct is not None:
            return direct
        if ref.qualifier is None:
            # Fall back to a unique unqualified match.
            matches = [
                stats
                for (_, name), stats in self.column_stats.items()
                if name == ref.name.lower()
            ]
            if len(matches) == 1:
                return matches[0]
        return None


class CostModel:
    """Estimate cardinalities and costs given a statistics provider.

    `stats_provider` is duck-typed: anything with
    `table_stats(table_name) -> TableStats`. When statistics are missing the
    model degrades to textbook default selectivities.
    """

    SORT_FACTOR = 0.2
    HASH_BUILD_FACTOR = 1.5
    AGG_FACTOR = 1.2

    def __init__(self, stats_provider=None):
        self.stats_provider = stats_provider
        #: id(plan) -> (plan, PlanCost) while inside a `memo_scope`; holding
        #: the plan itself keeps it alive, so a recycled id cannot alias a
        #: discarded candidate's entry
        self._memo: Optional[dict] = None

    # -- public ------------------------------------------------------------------

    def estimate(self, plan: LogicalPlan) -> PlanCost:
        memo = self._memo
        if memo is not None:
            cached = memo.get(id(plan))
            if cached is not None and cached[0] is plan:
                return cached[1]
        result = self._estimate_node(plan)
        if memo is not None:
            memo[id(plan)] = (plan, result)
        return result

    @contextmanager
    def memo_scope(self):
        """Memoize node estimates for one optimization pass.

        Join-order search estimates shared subtrees once per *candidate*
        containing them — exponentially often on larger join sets. Scoping
        the memo to a pass (rather than caching forever) keeps estimates
        correct across statistics changes; re-entrant, the outermost scope
        owns the table.
        """
        if self._memo is not None:
            yield self
            return
        self._memo = {}
        try:
            yield self
        finally:
            self._memo = None

    def _estimate_node(self, plan: LogicalPlan) -> PlanCost:
        if isinstance(plan, LogicalScan):
            return self._scan(plan)
        if isinstance(plan, LogicalFilter):
            return self._filter(plan)
        if isinstance(plan, LogicalProject):
            child = self.estimate(plan.child)
            # Projection renames columns; remap stats for bare column items.
            out_stats = {}
            for item, column in zip(plan.items, plan.schema):
                if isinstance(item.expr, ColumnRef):
                    stat = child.stat_for(item.expr)
                    if stat is not None:
                        out_stats[
                            ((column.qualifier or "").lower(), column.name.lower())
                        ] = stat
            return PlanCost(child.rows, child.cost + child.rows * 0.1, out_stats)
        if isinstance(plan, LogicalJoin):
            return self._join(plan)
        if isinstance(plan, LogicalAggregate):
            return self._aggregate(plan)
        if isinstance(plan, LogicalSort):
            child = self.estimate(plan.child)
            extra = child.rows * math.log2(child.rows + 2) * self.SORT_FACTOR
            return PlanCost(child.rows, child.cost + extra, child.column_stats)
        if isinstance(plan, LogicalLimit):
            child = self.estimate(plan.child)
            return PlanCost(
                min(child.rows, plan.limit), child.cost, child.column_stats
            )
        if isinstance(plan, LogicalDistinct):
            child = self.estimate(plan.child)
            rows = self._distinct_rows(plan, child)
            return PlanCost(rows, child.cost + child.rows, child.column_stats)
        if isinstance(plan, LogicalAlias):
            child = self.estimate(plan.child)
            remapped = {
                (plan.binding.lower(), name): stat
                for (_, name), stat in child.column_stats.items()
            }
            return PlanCost(child.rows, child.cost, remapped)
        if isinstance(plan, LogicalUnion):
            parts = [self.estimate(child) for child in plan.inputs]
            return PlanCost(
                sum(part.rows for part in parts),
                sum(part.cost for part in parts),
                parts[0].column_stats if parts else {},
            )
        # Unknown nodes (e.g. federation extensions estimate themselves).
        estimator = getattr(plan, "estimate_cost", None)
        if estimator is not None:
            return estimator(self)
        children = [self.estimate(child) for child in plan.children]
        rows = max((part.rows for part in children), default=1.0)
        cost = sum(part.cost for part in children) + rows
        return PlanCost(rows, cost)

    def selectivity(self, expr: Expr, context: PlanCost) -> float:
        """Estimated selectivity of one predicate conjunct."""
        if isinstance(expr, Literal):
            if expr.value is True:
                return 1.0
            return 0.0 if expr.value in (False, None) else 1.0
        if isinstance(expr, BinaryOp):
            if expr.op == "AND":
                return self.selectivity(expr.left, context) * self.selectivity(
                    expr.right, context
                )
            if expr.op == "OR":
                left = self.selectivity(expr.left, context)
                right = self.selectivity(expr.right, context)
                return min(left + right - left * right, 1.0)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return self._comparison_selectivity(expr, context)
        if isinstance(expr, UnaryOp) and expr.op == "NOT":
            return max(1.0 - self.selectivity(expr.operand, context), 0.0)
        if isinstance(expr, IsNull):
            stat = (
                context.stat_for(expr.operand)
                if isinstance(expr.operand, ColumnRef)
                else None
            )
            fraction = stat.null_fraction if stat is not None else 0.05
            return (1.0 - fraction) if expr.negated else fraction
        if isinstance(expr, InList):
            base = self._eq_selectivity_of(expr.operand, None, context)
            sel = min(base * len(expr.items), 1.0)
            return (1.0 - sel) if expr.negated else sel
        if isinstance(expr, Like):
            sel = DEFAULT_LIKE_SELECTIVITY
            return (1.0 - sel) if expr.negated else sel
        if isinstance(expr, Between):
            sel = DEFAULT_RANGE_SELECTIVITY
            if isinstance(expr.operand, ColumnRef):
                stat = context.stat_for(expr.operand)
                if stat is not None:
                    low = _literal_value(expr.low)
                    high = _literal_value(expr.high)
                    if low is not None and high is not None:
                        sel = max(
                            stat.range_selectivity("<=", high)
                            - stat.range_selectivity("<", low),
                            0.0,
                        )
            return (1.0 - sel) if expr.negated else sel
        return DEFAULT_RANGE_SELECTIVITY

    # -- node estimators -----------------------------------------------------------

    def _scan(self, plan: LogicalScan) -> PlanCost:
        stats = self._table_stats(plan.table_name)
        if stats is None:
            return PlanCost(1000.0, 1000.0)
        column_stats = {
            (plan.binding.lower(), name): stat for name, stat in stats.columns.items()
        }
        return PlanCost(float(stats.row_count), float(stats.row_count), column_stats)

    def _filter(self, plan: LogicalFilter) -> PlanCost:
        child = self.estimate(plan.child)
        selectivity = 1.0
        for conjunct in split_conjuncts(plan.predicate):
            selectivity *= self.selectivity(conjunct, child)
        rows = max(child.rows * selectivity, 0.0)
        return PlanCost(rows, child.cost + child.rows * 0.2, child.column_stats)

    def _join(self, plan: LogicalJoin) -> PlanCost:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        merged_stats = {**left.column_stats, **right.column_stats}
        combined = PlanCost(0, 0, merged_stats)
        selectivity = 1.0
        if plan.condition is None:
            rows = left.rows * right.rows
        else:
            rows = left.rows * right.rows
            for conjunct in split_conjuncts(plan.condition):
                sides = equi_join_sides(conjunct)
                if sides is not None:
                    left_ndv = self._ndv(sides[0], combined)
                    right_ndv = self._ndv(sides[1], combined)
                    rows /= max(left_ndv, right_ndv, 1.0)
                else:
                    rows *= self.selectivity(conjunct, combined)
                    selectivity *= 1  # non-equi handled multiplicatively above
        if plan.kind == "LEFT":
            rows = max(rows, left.rows)
        cost = (
            left.cost
            + right.cost
            + left.rows
            + right.rows * self.HASH_BUILD_FACTOR
        )
        return PlanCost(max(rows, 0.0), cost, merged_stats)

    def _aggregate(self, plan: LogicalAggregate) -> PlanCost:
        child = self.estimate(plan.child)
        if not plan.group_exprs:
            rows = 1.0
        else:
            groups = 1.0
            for expr in plan.group_exprs:
                if isinstance(expr, ColumnRef):
                    groups *= self._ndv(expr, child)
                else:
                    groups *= DEFAULT_NDV
            rows = min(groups, max(child.rows, 1.0))
        cost = child.cost + child.rows * self.AGG_FACTOR
        # Aggregate output columns: group columns inherit their source stats.
        out_stats = {}
        for expr, name in zip(plan.group_exprs, plan.group_names):
            if isinstance(expr, ColumnRef):
                stat = child.stat_for(expr)
                if stat is not None:
                    out_stats[("", name.lower())] = stat
        return PlanCost(rows, cost, out_stats)

    def _distinct_rows(self, plan: LogicalDistinct, child: PlanCost) -> float:
        """DISTINCT output: product of the output columns' NDVs, capped.

        The same independence model `_aggregate` uses for GROUP BY — a
        DISTINCT is a group-by over its whole select list. Only when *no*
        output column has statistics does the old 0.5 heuristic apply.
        """
        ceiling = max(child.rows, 1.0)
        groups = 1.0
        have_stats = False
        for column in plan.schema:
            stat = child.stat_for(ColumnRef(column.name, column.qualifier))
            if stat is None:
                continue
            have_stats = True
            groups *= max(float(stat.distinct), 1.0)
            if groups >= ceiling:
                break
        if not have_stats:
            return max(child.rows * 0.5, 1.0)
        return max(min(groups, ceiling), 1.0)

    # -- helpers --------------------------------------------------------------------

    def _table_stats(self, table_name: str) -> Optional[TableStats]:
        if self.stats_provider is None:
            return None
        getter = getattr(self.stats_provider, "table_stats", None)
        if getter is None:
            getter = self.stats_provider.stats_for
        try:
            return getter(table_name)
        except Exception:
            return None

    def _ndv(self, ref: ColumnRef, context: PlanCost) -> float:
        stat = context.stat_for(ref)
        return float(stat.distinct) if stat is not None else DEFAULT_NDV

    def _comparison_selectivity(self, expr: BinaryOp, context: PlanCost) -> float:
        column, value, op = _normalize_comparison(expr)
        if column is None:
            if equi_join_sides(expr) is not None:
                left_ndv = self._ndv(expr.left, context)
                right_ndv = self._ndv(expr.right, context)
                return 1.0 / max(left_ndv, right_ndv, 1.0)
            return DEFAULT_RANGE_SELECTIVITY
        stat = context.stat_for(column)
        if op == "=":
            if stat is not None:
                return stat.eq_selectivity(value)
            return DEFAULT_EQ_SELECTIVITY
        if op == "<>":
            base = stat.eq_selectivity(value) if stat is not None else DEFAULT_EQ_SELECTIVITY
            return max(1.0 - base, 0.0)
        if stat is not None and value is not None:
            return stat.range_selectivity(op, value)
        return DEFAULT_RANGE_SELECTIVITY

    def _eq_selectivity_of(self, operand: Expr, value, context: PlanCost) -> float:
        if isinstance(operand, ColumnRef):
            stat = context.stat_for(operand)
            if stat is not None:
                return stat.eq_selectivity(value)
        return DEFAULT_EQ_SELECTIVITY


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _normalize_comparison(expr: BinaryOp):
    """Return (column, literal_value, op) with the column on the left."""
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left, expr.right.value, expr.op
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        return expr.right, expr.left.value, _MIRROR[expr.op]
    return None, None, expr.op


def _literal_value(expr: Expr):
    return expr.value if isinstance(expr, Literal) else None
