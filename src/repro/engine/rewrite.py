"""Rule-based logical rewrites.

Three classical rules, applied in order by `optimize_logical`:

1. constant folding over every embedded expression,
2. predicate pushdown (filters sink through projects and joins toward scans),
3. projection pruning (narrow scans to the columns the plan actually uses).

Join ordering (`repro.engine.joinorder`) runs between 2 and 3 so that it
sees filters already attached to the right inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.common.schema import RelSchema
from repro.engine.logical import (
    LogicalAggregate,
    LogicalAlias,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from repro.sql.ast import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.eval import compile_expr
from repro.sql.exprutil import (
    column_refs,
    conjoin,
    referenced_qualifiers,
    split_conjuncts,
    substitute_columns,
    transform,
)
from repro.sql.functions import is_aggregate_name

_EMPTY_SCHEMA = RelSchema([])


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def fold_constants(expr: Expr) -> Expr:
    """Evaluate literal-only subtrees and simplify boolean identities."""

    def rule(node: Expr) -> Optional[Expr]:
        simplified = _simplify_boolean(node)
        if simplified is not None:
            return simplified
        if _is_foldable(node):
            try:
                value = compile_expr(node, _EMPTY_SCHEMA)(())
            except Exception:
                return None
            return Literal(value)
        return None

    return transform(expr, rule)


def _is_foldable(node: Expr) -> bool:
    if isinstance(node, Literal):
        return False
    if isinstance(node, (ColumnRef, Star)):
        return False
    if isinstance(node, FuncCall) and is_aggregate_name(node.name):
        return False
    children: list[Expr]
    from repro.sql.exprutil import children as expr_children

    children = expr_children(node)
    return bool(children) and all(isinstance(child, Literal) for child in children)


def _simplify_boolean(node: Expr) -> Optional[Expr]:
    if isinstance(node, BinaryOp) and node.op == "AND":
        if node.left == Literal(True):
            return node.right
        if node.right == Literal(True):
            return node.left
        if Literal(False) in (node.left, node.right):
            return Literal(False)
    if isinstance(node, BinaryOp) and node.op == "OR":
        if node.left == Literal(False):
            return node.right
        if node.right == Literal(False):
            return node.left
        if Literal(True) in (node.left, node.right):
            return Literal(True)
    if isinstance(node, UnaryOp) and node.op == "NOT":
        if isinstance(node.operand, Literal) and isinstance(node.operand.value, bool):
            return Literal(not node.operand.value)
        if isinstance(node.operand, UnaryOp) and node.operand.op == "NOT":
            return node.operand.operand
    return None


def fold_plan_constants(plan: LogicalPlan) -> LogicalPlan:
    """Apply `fold_constants` to every expression embedded in the plan."""
    children = [fold_plan_constants(child) for child in plan.children]
    plan = plan.with_children(children) if children else plan
    if isinstance(plan, LogicalFilter):
        return LogicalFilter(plan.child, fold_constants(plan.predicate))
    if isinstance(plan, LogicalJoin) and plan.condition is not None:
        return LogicalJoin(
            plan.left, plan.right, plan.kind, fold_constants(plan.condition)
        )
    if isinstance(plan, LogicalProject):
        items = [
            SelectItem(fold_constants(item.expr), item.alias) for item in plan.items
        ]
        return LogicalProject(plan.child, items)
    return plan


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------


def push_filters(plan: LogicalPlan) -> LogicalPlan:
    """Sink filter conjuncts as close to the scans as legality allows."""
    return _push(plan, [])


def _push(plan: LogicalPlan, pending: list[Expr]) -> LogicalPlan:
    if isinstance(plan, LogicalFilter):
        conjuncts = split_conjuncts(plan.predicate)
        return _push(plan.child, pending + conjuncts)

    if isinstance(plan, LogicalProject):
        pushable: list[Expr] = []
        stuck: list[Expr] = []
        mapping = _project_mapping(plan)
        for conjunct in pending:
            rewritten = substitute_columns(conjunct, mapping)
            refs_ok = all(
                plan.child.schema.has(ref.name, ref.qualifier)
                for ref in column_refs(rewritten)
            )
            if refs_ok and not _has_aggregate(rewritten):
                pushable.append(rewritten)
            else:
                stuck.append(conjunct)
        child = _push(plan.child, pushable)
        rebuilt = LogicalProject(child, plan.items)
        return _wrap_filter(rebuilt, stuck)

    if isinstance(plan, LogicalJoin):
        return _push_join(plan, pending)

    if isinstance(plan, LogicalAggregate):
        pushable = []
        stuck = []
        group_map = {}
        for expr, name in zip(plan.group_exprs, plan.group_names):
            group_map[("", name.lower())] = expr
        for conjunct in pending:
            refs = column_refs(conjunct)
            if refs and all(
                ("", ref.name.lower()) in group_map and ref.qualifier is None
                for ref in refs
            ):
                pushable.append(substitute_columns(conjunct, group_map))
            else:
                stuck.append(conjunct)
        child = _push(plan.child, pushable)
        rebuilt = plan.with_children([child])
        return _wrap_filter(rebuilt, stuck)

    if isinstance(plan, (LogicalSort, LogicalDistinct)):
        child = _push(plan.children[0], pending)
        return plan.with_children([child])

    if isinstance(plan, LogicalAlias):
        # Translate alias-qualified references back to the child's columns.
        mapping = {
            (plan.binding.lower(), child_col.name.lower()): ColumnRef(
                child_col.name, child_col.qualifier
            )
            for child_col in plan.child.schema
        }
        pushable = []
        stuck = []
        for conjunct in pending:
            rewritten = substitute_columns(conjunct, mapping)
            if all(
                plan.child.schema.has(ref.name, ref.qualifier)
                for ref in column_refs(rewritten)
            ):
                pushable.append(rewritten)
            else:
                stuck.append(conjunct)
        child = _push(plan.child, pushable)
        return _wrap_filter(LogicalAlias(child, plan.binding), stuck)

    if isinstance(plan, LogicalLimit):
        # Filters must not move below LIMIT (it would change which rows are kept).
        child = _push(plan.child, [])
        return _wrap_filter(plan.with_children([child]), pending)

    if isinstance(plan, LogicalUnion):
        children = [_push(child, []) for child in plan.inputs]
        return _wrap_filter(plan.with_children(children), pending)

    if isinstance(plan, LogicalScan):
        return _wrap_filter(plan, pending)

    # Unknown/extension nodes: do not push through.
    children = [_push(child, []) for child in plan.children]
    rebuilt = plan.with_children(children) if children else plan
    return _wrap_filter(rebuilt, pending)


def _push_join(plan: LogicalJoin, pending: list[Expr]) -> LogicalPlan:
    left_quals = _plan_qualifiers(plan.left)
    right_quals = _plan_qualifiers(plan.right)
    to_left: list[Expr] = []
    to_right: list[Expr] = []
    to_condition: list[Expr] = []
    stuck: list[Expr] = []

    candidates = list(pending)
    if plan.kind == "INNER" and plan.condition is not None:
        candidates += split_conjuncts(plan.condition)

    for conjunct in candidates:
        quals = referenced_qualifiers(conjunct)
        if "" in quals:
            # Unqualified refs: resolve by schema membership.
            side = _side_of_unqualified(conjunct, plan)
            if side == "left":
                to_left.append(conjunct)
            elif side == "right" and plan.kind == "INNER":
                to_right.append(conjunct)
            elif side == "right":
                to_condition.append(conjunct)
            else:
                stuck.append(conjunct)
            continue
        if quals <= left_quals:
            to_left.append(conjunct)
        elif quals <= right_quals:
            if plan.kind == "INNER":
                to_right.append(conjunct)
            else:
                # Right-side predicates on a LEFT join filter padded rows if
                # applied above, but narrow the join if merged into ON.
                to_condition.append(conjunct)
        else:
            to_condition.append(conjunct)

    left = _push(plan.left, to_left)
    if plan.kind == "LEFT" and plan.condition is not None:
        # The original ON condition of a LEFT join must stay intact.
        to_condition = split_conjuncts(plan.condition) + [
            c for c in to_condition if c not in split_conjuncts(plan.condition)
        ]
        right = _push(plan.right, to_right)
        rebuilt = LogicalJoin(left, right, plan.kind, conjoin(to_condition))
        return _wrap_filter(rebuilt, stuck)

    right = _push(plan.right, to_right)
    condition = conjoin(to_condition)
    rebuilt = LogicalJoin(left, right, plan.kind, condition)
    return _wrap_filter(rebuilt, stuck)


def _side_of_unqualified(conjunct: Expr, plan: LogicalJoin) -> Optional[str]:
    refs = column_refs(conjunct)
    if all(plan.left.schema.has(ref.name, ref.qualifier) for ref in refs):
        return "left"
    if all(plan.right.schema.has(ref.name, ref.qualifier) for ref in refs):
        return "right"
    return None


def _project_mapping(plan: LogicalProject) -> dict:
    mapping = {}
    for item, column in zip(plan.items, plan.schema):
        key = ((column.qualifier or "").lower(), column.name.lower())
        mapping[key] = item.expr
    return mapping


def _has_aggregate(expr: Expr) -> bool:
    from repro.sql.exprutil import contains_aggregate

    return contains_aggregate(expr)


def _plan_qualifiers(plan: LogicalPlan) -> set[str]:
    return {(column.qualifier or "").lower() for column in plan.schema} - {""} | {
        (column.qualifier or "").lower() for column in plan.schema
    }


def _wrap_filter(plan: LogicalPlan, conjuncts: list[Expr]) -> LogicalPlan:
    conjuncts = [c for c in conjuncts if c != Literal(True)]
    predicate = conjoin(conjuncts)
    if predicate is None:
        return plan
    return LogicalFilter(plan, predicate)


# ---------------------------------------------------------------------------
# Projection pruning
# ---------------------------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Insert narrowing projections directly above scans.

    Collects every `(qualifier, name)` referenced anywhere in the plan and
    drops scan columns nothing uses. This is what keeps component queries
    narrow when the federation layer ships them to remote sources.
    """
    required = _collect_required(plan)
    return _apply_pruning(plan, required)


def _collect_required(plan: LogicalPlan) -> set:
    required: set = set()
    for node in plan.walk():
        exprs: list[Expr] = []
        if isinstance(node, LogicalFilter):
            exprs.append(node.predicate)
        elif isinstance(node, LogicalJoin) and node.condition is not None:
            exprs.append(node.condition)
        elif isinstance(node, LogicalProject):
            exprs.extend(item.expr for item in node.items)
        elif isinstance(node, LogicalAggregate):
            exprs.extend(node.group_exprs)
            for call in node.aggregates:
                exprs.extend(call.args)
        elif isinstance(node, LogicalSort):
            exprs.extend(item.expr for item in node.order_items)
        elif isinstance(node, LogicalUnion):
            # Union is positional; require all child columns.
            for child in node.inputs:
                for column in child.schema:
                    required.add(
                        ((column.qualifier or "").lower(), column.name.lower())
                    )
        for expr in exprs:
            for ref in column_refs(expr):
                required.add(((ref.qualifier or "").lower(), ref.name.lower()))
    return required


def _apply_pruning(plan: LogicalPlan, required: set) -> LogicalPlan:
    if isinstance(plan, LogicalAlias):
        # References to the alias binding translate to child columns.
        translated = set(required)
        binding = plan.binding.lower()
        for column in plan.child.schema:
            name = column.name.lower()
            if (binding, name) in required or ("", name) in required:
                translated.add(((column.qualifier or "").lower(), name))
        child = _apply_pruning(plan.child, translated)
        return LogicalAlias(child, plan.binding)
    if isinstance(plan, LogicalScan):
        keep = _keep_columns(plan, required)
        if keep is None:
            return plan
        items = [
            SelectItem(ColumnRef(column.name, column.qualifier)) for column in keep
        ]
        return LogicalProject(plan, items)
    if isinstance(plan, LogicalFilter) and isinstance(plan.child, LogicalScan):
        # Keep Filter directly over Scan so the executor can choose an index
        # access path; the narrowing projection goes above the filter.
        keep = _keep_columns(plan.child, required)
        if keep is None:
            return plan
        items = [
            SelectItem(ColumnRef(column.name, column.qualifier)) for column in keep
        ]
        return LogicalProject(plan, items)
    children = [_apply_pruning(child, required) for child in plan.children]
    return plan.with_children(children) if children else plan


def _keep_columns(scan: LogicalScan, required: set):
    """Columns of `scan` the plan needs, or None when nothing can be dropped."""
    keep = [
        column
        for column in scan.schema
        if ((column.qualifier or "").lower(), column.name.lower()) in required
        or ("", column.name.lower()) in required
    ]
    if not keep:
        keep = list(scan.schema.columns[:1])  # keep one column for COUNT(*)
    if len(keep) == len(scan.schema):
        return None
    return keep


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def optimize_logical(
    plan: LogicalPlan, cost_model=None, join_dp_limit=None
) -> LogicalPlan:
    """Full logical optimization pipeline.

    `join_dp_limit` caps exhaustive join-order search (None keeps the
    module default, `joinorder.DP_LIMIT`).
    """
    from repro.engine.joinorder import DP_LIMIT, reorder_joins

    plan = fold_plan_constants(plan)
    plan = push_filters(plan)
    if cost_model is not None:
        limit = DP_LIMIT if join_dp_limit is None else join_dp_limit
        plan = reorder_joins(plan, cost_model, dp_limit=limit)
        plan = push_filters(plan)  # reordering can re-expose pushdown chances
    plan = prune_columns(plan)
    return plan
