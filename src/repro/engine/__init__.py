"""Cost-based local query engine.

The engine turns a parsed `Select` into a logical plan (`repro.engine.logical`),
improves it with rewrite rules and cost-based join ordering
(`repro.engine.rewrite`, `repro.engine.joinorder`, `repro.engine.cost`), lowers
it to physical operators (`repro.engine.physical`) and executes it against a
`repro.storage.Database`.

The same logical algebra is reused by the federation layer: component plans
pushed to relational sources execute on each source's own `LocalEngine`,
which is exactly the "push work down to mature database servers" design the
panel's §3 (Bitton) prescribes.
"""

from repro.engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from repro.engine.planner import bind_select
from repro.engine.executor import LocalEngine
from repro.engine.cost import CostModel, PlanCost

__all__ = [
    "CostModel",
    "LocalEngine",
    "LogicalAggregate",
    "LogicalDistinct",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalPlan",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "LogicalUnion",
    "PlanCost",
    "bind_select",
]
