"""Binder: turn a parsed `Select` into a logical plan.

The binder resolves table names through a `TableResolver` (duck-typed:
anything with `resolve_table(name) -> RelSchema` of unqualified columns).
`repro.storage.Database` is adapted below; the mediator provides its own
resolver over the virtual schema.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.errors import PlanError, SchemaError
from repro.common.schema import RelSchema
from repro.engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sql.ast import (
    ColumnRef,
    Expr,
    FuncCall,
    OrderItem,
    Select,
    SelectItem,
    Star,
)
from repro.sql.exprutil import column_refs, contains_aggregate, transform, walk
from repro.sql.functions import is_aggregate_name


class DatabaseResolver:
    """Adapt a `repro.storage.Database` to the TableResolver protocol."""

    def __init__(self, db):
        self.db = db

    def resolve_table(self, name: str) -> RelSchema:
        return self.db.table(name).schema


def bind_select(stmt, resolver) -> LogicalPlan:
    """Bind a Select or UnionSelect, producing an unoptimized logical plan."""
    from repro.sql.ast import UnionSelect

    if isinstance(stmt, UnionSelect):
        return _bind_union(stmt, resolver)
    return _Binder(stmt, resolver).bind()


def _bind_union(stmt, resolver) -> LogicalPlan:
    from repro.engine.logical import LogicalAlias, LogicalUnion

    children = [_Binder(select, resolver).bind() for select in stmt.selects]
    widths = {len(child.schema) for child in children}
    if len(widths) != 1:
        raise PlanError(f"UNION branches have differing widths: {sorted(widths)}")
    plan: LogicalPlan = LogicalUnion(children)
    if not stmt.all:
        plan = LogicalDistinct(plan)
    if stmt.order_by:
        for item in stmt.order_by:
            for ref in column_refs(item.expr):
                if not plan.schema.has(ref.name, ref.qualifier):
                    raise PlanError(
                        f"ORDER BY column {ref} not in the union's first branch"
                    )
        plan = LogicalSort(plan, stmt.order_by)
    if stmt.limit is not None:
        plan = LogicalLimit(plan, stmt.limit)
    return plan


class _Binder:
    def __init__(self, stmt: Select, resolver):
        self.stmt = stmt
        self.resolver = resolver

    def bind(self) -> LogicalPlan:
        plan = self._bind_from()
        input_schema = plan.schema

        if self.stmt.where is not None:
            self._check_refs(self.stmt.where, input_schema, context="WHERE")
            if contains_aggregate(self.stmt.where):
                raise PlanError("aggregates are not allowed in WHERE")
            plan = LogicalFilter(plan, self.stmt.where)

        items = self._expand_stars(self.stmt.items, input_schema)

        needs_aggregate = bool(self.stmt.group_by) or any(
            contains_aggregate(item.expr) for item in items
        )
        if self.stmt.having is not None and not needs_aggregate:
            raise PlanError("HAVING requires GROUP BY or aggregates")

        order_items = list(self.stmt.order_by)
        if needs_aggregate:
            plan, items, having, order_items = self._bind_aggregate(
                plan, items, order_items
            )
            if having is not None:
                plan = LogicalFilter(plan, having)
        else:
            for item in items:
                self._check_refs(item.expr, input_schema, context="SELECT")

        project = LogicalProject(plan, items)

        if self.stmt.distinct:
            result: LogicalPlan = LogicalDistinct(project)
        else:
            result = project

        if order_items:
            result = self._bind_order(result, project, order_items)

        if self.stmt.limit is not None:
            result = LogicalLimit(result, self.stmt.limit)
        return result

    # -- FROM clause -----------------------------------------------------------

    def _bind_from(self) -> LogicalPlan:
        tables = self.stmt.tables()
        if not tables:
            raise PlanError("SELECT without FROM is not supported")
        seen: set[str] = set()
        for table in tables:
            binding = table.binding.lower()
            if binding in seen:
                raise PlanError(f"duplicate table binding {table.binding!r}")
            seen.add(binding)

        def scan(ref) -> LogicalScan:
            schema = self.resolver.resolve_table(ref.name)
            return LogicalScan(ref.name, ref.binding, schema)

        plan: LogicalPlan = scan(self.stmt.from_tables[0])
        for ref in self.stmt.from_tables[1:]:
            plan = LogicalJoin(plan, scan(ref), "INNER", None)
        for join in self.stmt.joins:
            right = scan(join.table)
            if join.condition is not None:
                self._check_refs(
                    join.condition, plan.schema.concat(right.schema), context="ON"
                )
            plan = LogicalJoin(plan, right, join.kind, join.condition)
        return plan

    # -- select list -------------------------------------------------------------

    def _expand_stars(
        self, items: Sequence[SelectItem], schema: RelSchema
    ) -> list[SelectItem]:
        out: list[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star):
                qualifier = item.expr.qualifier
                matched = [
                    column
                    for column in schema
                    if qualifier is None
                    or (column.qualifier or "").lower() == qualifier.lower()
                ]
                if not matched:
                    raise SchemaError(f"no columns match {item.expr}")
                out.extend(
                    SelectItem(ColumnRef(column.name, column.qualifier))
                    for column in matched
                )
            else:
                out.append(item)
        if not out:
            raise PlanError("empty select list")
        return out

    # -- aggregation -----------------------------------------------------------

    def _bind_aggregate(self, plan, items, order_items):
        input_schema = plan.schema
        group_exprs = list(self.stmt.group_by)
        for expr in group_exprs:
            self._check_refs(expr, input_schema, context="GROUP BY")

        aggregates: list[FuncCall] = []

        def collect(expr: Expr):
            for node in walk(expr):
                if isinstance(node, FuncCall) and is_aggregate_name(node.name):
                    for arg in node.args:
                        if contains_aggregate(arg):
                            raise PlanError("nested aggregates are not allowed")
                        if not isinstance(arg, Star):
                            self._check_refs(arg, input_schema, context=node.name)
                    if node not in aggregates:
                        aggregates.append(node)

        for item in items:
            collect(item.expr)
        if self.stmt.having is not None:
            collect(self.stmt.having)
        for order in order_items:
            collect(order.expr)

        group_names = self._group_names(group_exprs)
        agg_names = [f"_a{i}" for i in range(len(aggregates))]
        aggregate = LogicalAggregate(plan, group_exprs, group_names, aggregates, agg_names)

        # Rewrite post-aggregation expressions to reference aggregate outputs.
        mapping: dict[Expr, Expr] = {}
        for expr, name in zip(group_exprs, group_names):
            mapping[expr] = ColumnRef(name)
        for call, name in zip(aggregates, agg_names):
            mapping[call] = ColumnRef(name)

        def rewrite(expr: Expr) -> Expr:
            def replace(node: Expr):
                return mapping.get(node)

            return transform(expr, replace)

        new_items = [SelectItem(rewrite(item.expr), item.alias) for item in items]
        for item in new_items:
            self._check_group_refs(item.expr, aggregate.schema)
        having = None
        if self.stmt.having is not None:
            having = rewrite(self.stmt.having)
            self._check_group_refs(having, aggregate.schema)
        new_order = [
            OrderItem(rewrite(order.expr), order.ascending) for order in order_items
        ]
        return aggregate, new_items, having, new_order

    def _group_names(self, group_exprs) -> list[str]:
        names: list[str] = []
        for i, expr in enumerate(group_exprs):
            if isinstance(expr, ColumnRef):
                candidate = expr.name
                if any(existing.lower() == candidate.lower() for existing in names):
                    candidate = f"{expr.qualifier}_{expr.name}" if expr.qualifier else f"_g{i}"
                names.append(candidate)
            else:
                names.append(f"_g{i}")
        return names

    def _check_group_refs(self, expr: Expr, agg_schema: RelSchema) -> None:
        for ref in column_refs(expr):
            if not agg_schema.has(ref.name, ref.qualifier):
                raise PlanError(
                    f"column {ref} must appear in GROUP BY or inside an aggregate"
                )

    # -- ORDER BY ----------------------------------------------------------------

    def _bind_order(self, result, project: LogicalProject, order_items):
        """Attach Sort above the projection.

        ORDER BY may reference output aliases, bare select expressions or
        (when unambiguous) input columns that also survive projection. Each
        order expression is rewritten in terms of the projection's output.
        """
        out_schema = project.schema
        rewritten: list[OrderItem] = []
        item_by_expr = {item.expr: item.output_name for item in project.items}
        for order in order_items:
            expr = order.expr
            if expr in item_by_expr:
                expr = ColumnRef(item_by_expr[expr])
            else:
                for ref in column_refs(expr):
                    if not out_schema.has(ref.name, ref.qualifier):
                        raise PlanError(
                            f"ORDER BY column {ref} is not in the select list"
                        )
            rewritten.append(OrderItem(expr, order.ascending))
        return LogicalSort(result, rewritten)

    # -- shared ------------------------------------------------------------------

    def _check_refs(self, expr: Expr, schema: RelSchema, context: str) -> None:
        for ref in column_refs(expr):
            try:
                schema.index_of(ref.name, ref.qualifier)
            except SchemaError as exc:
                raise SchemaError(f"in {context}: {exc}") from exc
