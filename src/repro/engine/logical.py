"""Logical relational algebra.

Nodes carry their output `RelSchema` so rewrites can be validated locally.
Plans are trees of immutable-by-convention nodes; rewrites construct new
nodes via each node's `with_children`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.common.schema import Column, RelSchema
from repro.common.types import DataType
from repro.sql.ast import ColumnRef, Expr, FuncCall, OrderItem, SelectItem


class LogicalPlan:
    """Base class: every node has `children`, `schema` and `with_children`."""

    schema: RelSchema

    @property
    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def label(self) -> str:
        return type(self).__name__.replace("Logical", "")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class LogicalScan(LogicalPlan):
    """Scan of a named base table under a binding (alias)."""

    def __init__(self, table_name: str, binding: str, schema: RelSchema):
        self.table_name = table_name
        self.binding = binding
        self.schema = schema.with_qualifier(binding)

    def label(self):
        if self.binding != self.table_name:
            return f"Scan({self.table_name} AS {self.binding})"
        return f"Scan({self.table_name})"


class LogicalFilter(LogicalPlan):
    def __init__(self, child: LogicalPlan, predicate: Expr):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalFilter(child, self.predicate)

    def label(self):
        return f"Filter({self.predicate})"


class LogicalProject(LogicalPlan):
    """Projection with computed expressions and output aliases.

    The output schema is unqualified: each output column is named by the
    item's `output_name`. Types are inferred only for plain column refs;
    computed expressions are typed ANY (sufficient for execution, and the
    optimizer does not rely on projected types).
    """

    def __init__(self, child: LogicalPlan, items: Sequence[SelectItem]):
        self.child = child
        self.items = tuple(items)
        columns = []
        for item in self.items:
            dtype = DataType.ANY
            qualifier = None
            if isinstance(item.expr, ColumnRef):
                try:
                    dtype = child.schema.column(
                        item.expr.name, item.expr.qualifier
                    ).dtype
                except Exception:  # unresolved here; binder validates upstream
                    dtype = DataType.ANY
                if item.alias is None:
                    # Bare column projections keep their qualifier so SELECT *
                    # over a join does not produce colliding output names.
                    qualifier = item.expr.qualifier
            columns.append(Column(item.output_name, dtype, qualifier))
        self.schema = RelSchema(columns)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalProject(child, self.items)

    def label(self):
        return f"Project({', '.join(str(item) for item in self.items)})"


class LogicalJoin(LogicalPlan):
    """Inner or left join; `condition` of None means cross join."""

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        kind: str = "INNER",
        condition: Optional[Expr] = None,
    ):
        if kind not in ("INNER", "LEFT"):
            raise PlanError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return LogicalJoin(left, right, self.kind, self.condition)

    def label(self):
        on = f" ON {self.condition}" if self.condition is not None else ""
        return f"{self.kind.title()}Join{on}"


class LogicalAggregate(LogicalPlan):
    """Hash aggregation.

    Output schema: one column per group expression (named by `group_names`)
    followed by one column per aggregate call (named by `agg_names`). The
    binder rewrites post-aggregation expressions to reference these names.
    """

    def __init__(
        self,
        child: LogicalPlan,
        group_exprs: Sequence[Expr],
        group_names: Sequence[str],
        aggregates: Sequence[FuncCall],
        agg_names: Sequence[str],
    ):
        if len(group_exprs) != len(group_names):
            raise PlanError("group expr/name arity mismatch")
        if len(aggregates) != len(agg_names):
            raise PlanError("aggregate expr/name arity mismatch")
        self.child = child
        self.group_exprs = tuple(group_exprs)
        self.group_names = tuple(group_names)
        self.aggregates = tuple(aggregates)
        self.agg_names = tuple(agg_names)
        columns = [Column(name, DataType.ANY) for name in group_names]
        columns += [Column(name, DataType.ANY) for name in agg_names]
        self.schema = RelSchema(columns)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalAggregate(
            child, self.group_exprs, self.group_names, self.aggregates, self.agg_names
        )

    def label(self):
        groups = ", ".join(str(g) for g in self.group_exprs)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Aggregate(by [{groups}] compute [{aggs}])"


class LogicalSort(LogicalPlan):
    def __init__(self, child: LogicalPlan, order_items: Sequence[OrderItem]):
        self.child = child
        self.order_items = tuple(order_items)
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalSort(child, self.order_items)

    def label(self):
        return f"Sort({', '.join(str(item) for item in self.order_items)})"


class LogicalLimit(LogicalPlan):
    def __init__(self, child: LogicalPlan, limit: int):
        self.child = child
        self.limit = limit
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalLimit(child, self.limit)

    def label(self):
        return f"Limit({self.limit})"


class LogicalDistinct(LogicalPlan):
    def __init__(self, child: LogicalPlan):
        self.child = child
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalDistinct(child)


class LogicalAlias(LogicalPlan):
    """Expose a subplan's output under a new table binding.

    Used by GAV view unfolding: a scan of virtual table `v AS b` becomes
    `Alias(b, <definition plan>)`, whose schema re-qualifies every output
    column with `b`. Execution is a free relabel.
    """

    def __init__(self, child: LogicalPlan, binding: str):
        self.child = child
        self.binding = binding
        self.schema = RelSchema(
            Column(column.name, column.dtype, binding) for column in child.schema
        )

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return LogicalAlias(child, self.binding)

    def label(self):
        return f"Alias({self.binding})"


class LogicalUnion(LogicalPlan):
    """Bag UNION ALL of schema-compatible children (width must match)."""

    def __init__(self, inputs: Sequence[LogicalPlan]):
        if not inputs:
            raise PlanError("union of zero inputs")
        widths = {len(child.schema) for child in inputs}
        if len(widths) != 1:
            raise PlanError(f"union inputs have differing widths {widths}")
        self.inputs = tuple(inputs)
        self.schema = inputs[0].schema

    @property
    def children(self):
        return self.inputs

    def with_children(self, children):
        return LogicalUnion(tuple(children))

    def label(self):
        return f"UnionAll({len(self.inputs)})"
