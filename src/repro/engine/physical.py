"""Physical operators.

Operators materialize their output as a list of tuples via `run()`. Each
carries its output schema and an `explain_label` for EXPLAIN trees. The
executor (`repro.engine.executor`) lowers logical plans to these operators;
the federation layer adds its own operators (bind joins, remote fetches)
that follow the same protocol.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.common.relation import Relation
from repro.common.schema import RelSchema


class PhysicalOp:
    """Base physical operator: `schema`, `run() -> list[tuple]`, children."""

    schema: RelSchema

    @property
    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def run(self) -> list[tuple]:
        raise NotImplementedError

    def relation(self) -> Relation:
        return Relation(self.schema, self.run())

    def explain_label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.explain_label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class SeqScan(PhysicalOp):
    """Full scan of a storage table."""

    def __init__(self, table, binding: str):
        self.table = table
        self.binding = binding
        self.schema = table.schema.with_qualifier(binding)

    def run(self):
        return list(self.table.rows())

    def explain_label(self):
        return f"SeqScan({self.table.name} AS {self.binding})"


class IndexEqScan(PhysicalOp):
    """Point lookup through a hash or sorted index."""

    def __init__(self, table, binding: str, column: str, value):
        self.table = table
        self.binding = binding
        self.column = column
        self.value = value
        self.schema = table.schema.with_qualifier(binding)

    def run(self):
        return self.table.lookup(self.column, self.value)

    def explain_label(self):
        return f"IndexEqScan({self.table.name}.{self.column} = {self.value!r})"


class IndexRangeScan(PhysicalOp):
    """Range scan through a sorted index."""

    def __init__(
        self,
        table,
        binding: str,
        column: str,
        low=None,
        high=None,
        include_low: bool = True,
        include_high: bool = True,
    ):
        self.table = table
        self.binding = binding
        self.column = column
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.schema = table.schema.with_qualifier(binding)

    def run(self):
        index = self.table.index_on(self.column)
        rids = index.range(self.low, self.high, self.include_low, self.include_high)
        return [self.table.row_by_id(rid) for rid in rids]

    def explain_label(self):
        low = "" if self.low is None else f"{self.low!r} <{'=' if self.include_low else ''} "
        high = "" if self.high is None else f" <{'=' if self.include_high else ''} {self.high!r}"
        return f"IndexRangeScan({self.table.name}.{self.column}: {low}x{high})"


class ValuesOp(PhysicalOp):
    """A constant relation (used by federation to inline fetched results)."""

    def __init__(self, schema: RelSchema, rows: Sequence[tuple], label: str = "Values"):
        self.schema = schema
        self._rows = [tuple(row) for row in rows]
        self._label = label

    def run(self):
        return list(self._rows)

    def explain_label(self):
        return f"{self._label}({len(self._rows)} rows)"


class RelabelOp(PhysicalOp):
    """Free schema relabel (alias/rename); rows pass through untouched."""

    def __init__(self, child: PhysicalOp, schema: RelSchema, label: str = "Relabel"):
        self.child = child
        self.schema = schema
        self._label = label

    @property
    def children(self):
        return (self.child,)

    def run(self):
        return self.child.run()

    def explain_label(self):
        return self._label


class FilterOp(PhysicalOp):
    def __init__(self, child: PhysicalOp, predicate_fn: Callable, description: str = ""):
        self.child = child
        self.predicate_fn = predicate_fn
        self.description = description
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def run(self):
        predicate = self.predicate_fn
        return [row for row in self.child.run() if predicate(row)]

    def explain_label(self):
        return f"Filter({self.description})"


class ProjectOp(PhysicalOp):
    def __init__(self, child: PhysicalOp, fns: Sequence[Callable], schema: RelSchema, description: str = ""):
        self.child = child
        self.fns = list(fns)
        self.schema = schema
        self.description = description

    @property
    def children(self):
        return (self.child,)

    def run(self):
        fns = self.fns
        return [tuple(fn(row) for fn in fns) for row in self.child.run()]

    def explain_label(self):
        return f"Project({self.description})"


class HashJoinOp(PhysicalOp):
    """Hash join on equi-key positions; supports INNER and LEFT.

    Builds on the right input, probes with the left. A residual predicate
    (compiled against the concatenated schema) filters matches; for LEFT
    joins, unmatched probe rows are padded with NULLs.
    """

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        kind: str = "INNER",
        residual_fn: Optional[Callable] = None,
        description: str = "",
    ):
        self.left = left
        self.right = right
        self.left_key_positions = list(left_key_positions)
        self.right_key_positions = list(right_key_positions)
        self.kind = kind
        self.residual_fn = residual_fn
        self.description = description
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self):
        return (self.left, self.right)

    def run(self):
        right_rows = self.right.run()
        table: dict = {}
        for row in right_rows:
            key = tuple(row[i] for i in self.right_key_positions)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(row)
        out: list[tuple] = []
        null_pad = (None,) * len(self.right.schema)
        residual = self.residual_fn
        for row in self.left.run():
            key = tuple(row[i] for i in self.left_key_positions)
            matches = [] if any(part is None for part in key) else table.get(key, [])
            matched = False
            for other in matches:
                combined = row + other
                if residual is not None and not residual(combined):
                    continue
                out.append(combined)
                matched = True
            if not matched and self.kind == "LEFT":
                out.append(row + null_pad)
        return out

    def explain_label(self):
        return f"HashJoin[{self.kind}]({self.description})"


class NestedLoopJoinOp(PhysicalOp):
    """Fallback join for non-equi or missing conditions."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        condition_fn: Optional[Callable] = None,
        kind: str = "INNER",
        description: str = "",
    ):
        self.left = left
        self.right = right
        self.condition_fn = condition_fn
        self.kind = kind
        self.description = description
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self):
        return (self.left, self.right)

    def run(self):
        right_rows = self.right.run()
        out: list[tuple] = []
        null_pad = (None,) * len(self.right.schema)
        condition = self.condition_fn
        for row in self.left.run():
            matched = False
            for other in right_rows:
                combined = row + other
                if condition is not None and not condition(combined):
                    continue
                out.append(combined)
                matched = True
            if not matched and self.kind == "LEFT":
                out.append(row + null_pad)
        return out

    def explain_label(self):
        return f"NestedLoopJoin[{self.kind}]({self.description})"


class MergeJoinOp(PhysicalOp):
    """Sort-merge equi-join (INNER only); kept for operator-equivalence tests."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        description: str = "",
    ):
        self.left = left
        self.right = right
        self.left_key_positions = list(left_key_positions)
        self.right_key_positions = list(right_key_positions)
        self.description = description
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self):
        return (self.left, self.right)

    def run(self):
        def key_of(row, positions):
            return tuple(row[i] for i in positions)

        left_rows = sorted(
            (row for row in self.left.run()
             if not any(row[i] is None for i in self.left_key_positions)),
            key=lambda row: key_of(row, self.left_key_positions),
        )
        right_rows = sorted(
            (row for row in self.right.run()
             if not any(row[i] is None for i in self.right_key_positions)),
            key=lambda row: key_of(row, self.right_key_positions),
        )
        out: list[tuple] = []
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lkey = key_of(left_rows[i], self.left_key_positions)
            rkey = key_of(right_rows[j], self.right_key_positions)
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                j_end = j
                while j_end < len(right_rows) and key_of(
                    right_rows[j_end], self.right_key_positions
                ) == rkey:
                    j_end += 1
                i_end = i
                while i_end < len(left_rows) and key_of(
                    left_rows[i_end], self.left_key_positions
                ) == lkey:
                    i_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        out.append(left_rows[a] + right_rows[b])
                i, j = i_end, j_end
        return out

    def explain_label(self):
        return f"MergeJoin({self.description})"


class HashAggregateOp(PhysicalOp):
    """Group-by hash aggregation.

    `agg_specs` is a list of `(name, distinct, arg_fn)`; `arg_fn` of None
    means COUNT(*) semantics (every row counts).
    """

    def __init__(
        self,
        child: PhysicalOp,
        group_fns: Sequence[Callable],
        agg_specs: Sequence[tuple],
        schema: RelSchema,
        description: str = "",
    ):
        self.child = child
        self.group_fns = list(group_fns)
        self.agg_specs = list(agg_specs)
        self.schema = schema
        self.description = description

    @property
    def children(self):
        return (self.child,)

    def run(self):
        from repro.sql.functions import make_aggregate

        groups: dict = {}
        for row in self.child.run():
            key = tuple(fn(row) for fn in self.group_fns)
            aggs = groups.get(key)
            if aggs is None:
                aggs = [make_aggregate(name, distinct) for name, distinct, _ in self.agg_specs]
                groups[key] = aggs
            for agg, (_, _, arg_fn) in zip(aggs, self.agg_specs):
                agg.add(1 if arg_fn is None else arg_fn(row))
        if not groups and not self.group_fns:
            # Global aggregate over zero rows still yields one row.
            aggs = [make_aggregate(name, distinct) for name, distinct, _ in self.agg_specs]
            groups[()] = aggs
        return [key + tuple(agg.finish() for agg in aggs) for key, aggs in groups.items()]

    def explain_label(self):
        return f"HashAggregate({self.description})"


class SortOp(PhysicalOp):
    """Multi-key sort. ASC places NULLs first, DESC places them last."""

    def __init__(self, child: PhysicalOp, key_fns: Sequence[Callable], ascendings: Sequence[bool], description: str = ""):
        self.child = child
        self.key_fns = list(key_fns)
        self.ascendings = list(ascendings)
        self.schema = child.schema
        self.description = description

    @property
    def children(self):
        return (self.child,)

    def run(self):
        rows = self.child.run()
        # Successive stable sorts from the least-significant key backward.
        for key_fn, ascending in reversed(list(zip(self.key_fns, self.ascendings))):
            def sort_key(row, fn=key_fn):
                value = fn(row)
                return (value is not None, value if value is not None else 0)

            rows = sorted(rows, key=sort_key, reverse=not ascending)
        return rows

    def explain_label(self):
        return f"Sort({self.description})"


class LimitOp(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: int):
        self.child = child
        self.limit = limit
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def run(self):
        return self.child.run()[: self.limit]

    def explain_label(self):
        return f"Limit({self.limit})"


class DistinctOp(PhysicalOp):
    def __init__(self, child: PhysicalOp):
        self.child = child
        self.schema = child.schema

    @property
    def children(self):
        return (self.child,)

    def run(self):
        seen = set()
        out = []
        for row in self.child.run():
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out


class UnionAllOp(PhysicalOp):
    def __init__(self, inputs: Sequence[PhysicalOp]):
        self.inputs = list(inputs)
        self.schema = self.inputs[0].schema

    @property
    def children(self):
        return tuple(self.inputs)

    def run(self):
        out: list[tuple] = []
        for child in self.inputs:
            out.extend(child.run())
        return out
