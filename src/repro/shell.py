r"""An interactive federated SQL shell over the EIIBench enterprise.

    python -m repro            # interactive
    echo "SELECT ..." | python -m repro   # batch from stdin

Commands:
    \sources            list registered sources and their dialects
    \tables             list federated tables
    \explain <sql>      show the federated plan without executing
    \lint <sql|path>    static analysis: a query, or a workspace directory
                        of .sql/.gav/.lav files (typed EIIxxx diagnostics)
    \metrics            toggle per-query execution accounting
    \profile <sql>      execute and show EXPLAIN ANALYZE (per-node actuals)
    \scoreboard         per-source latency/bytes/failure scoreboard
    \feedback [clear]   inspect (or drop) the adaptive cardinality
                        calibrations learned from executed queries
    \trace              toggle tracing (on by default; off = no-op tracer)
    \workload [n [seed]]  run a seeded n-query multi-tenant workload
                        through the concurrent scheduler (default 25, seed 0)
    \views              materialized views (staleness, hits) and the
                        auto-materialization advisor's recommendations
    \health             telemetry dashboard: per-source health, sparklines
    \slo                per-tenant SLO status (burn rates, breaches)
    \alerts             alert history (firing and resolved)
    \help               show this command list
    \quit               exit

Anything else is executed as federated SQL against the generated
customer-360 enterprise (CRM + sales + support + finance + spreadsheet +
credit web service + NETMARK documents).
"""

from __future__ import annotations

import sys

import repro
from repro.adaptive import AdaptiveContext
from repro.bench import BenchConfig, build_enterprise
from repro.common.errors import EIIError
from repro.federation import EngineConfig
from repro.netsim import SimClock
from repro.telemetry import TelemetryPlane
from repro.trace import QueryScoreboard, Tracer


class Shell:
    def __init__(self, scale: int = 1, out=None, telemetry: bool = True):
        self.out = out if out is not None else sys.stdout
        fixture = build_enterprise(BenchConfig(scale=scale))
        self.scoreboard = QueryScoreboard()
        self.tracer = Tracer(scoreboard=self.scoreboard)
        self.adaptive = AdaptiveContext(scoreboard=self.scoreboard)
        # With telemetry on, the shell runs on a SimClock advanced by each
        # query's simulated elapsed time, so health/SLO windows roll on the
        # same timeline the netsim charges. Telemetry off keeps the
        # historical wall-clock engine, byte-identical output included.
        config = EngineConfig(
            tracer=self.tracer,
            adaptive=self.adaptive,
            views=True,
            auto_materialize=True,
        )
        self.clock = None
        self.telemetry = None
        if telemetry:
            self.clock = SimClock()
            self.telemetry = TelemetryPlane(clock=self.clock)
            config = config.with_overrides(
                clock=self.clock, telemetry=self.telemetry
            )
        self.engine = repro.connect(fixture.catalog(), config)
        self.show_metrics = True
        self.tracing = True

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- command dispatch -----------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("\\"):
            return self._command(line)
        self._run_sql(line)
        return True

    def _command(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        command = command.lower()
        if command in ("\\quit", "\\q"):
            return False
        if command == "\\sources":
            for name, source in sorted(self.engine.catalog.sources.items()):
                caps = source.capabilities
                self.write(
                    f"  {name:12} {type(source).__name__:18} "
                    f"dialect={caps.dialect} wire={caps.wire_format.name}"
                )
            return True
        if command == "\\tables":
            for table in self.engine.catalog.table_names():
                entry = self.engine.catalog.entry(table)
                columns = ", ".join(entry.schema.names)
                self.write(f"  {table:14} @{entry.source.name:10} ({columns})")
            return True
        if command == "\\explain":
            if not argument.strip():
                self.write("usage: \\explain <sql>")
                return True
            try:
                self.write(self.engine.explain(argument))
            except EIIError as exc:
                self.write(f"error: {exc}")
            return True
        if command == "\\lint":
            if not argument.strip():
                self.write("usage: \\lint <sql | workspace path>")
                return True
            self._lint(argument.strip())
            return True
        if command == "\\metrics":
            self.show_metrics = not self.show_metrics
            self.write(f"metrics {'on' if self.show_metrics else 'off'}")
            return True
        if command == "\\profile":
            if not argument.strip():
                self.write("usage: \\profile <sql>")
                return True
            try:
                result = self.engine.query(argument, analyze=True)
            except EIIError as exc:
                self.write(f"error: {exc}")
                return True
            if self.clock is not None:
                self.clock.advance(result.elapsed_seconds)
            self.write(result.explain_analyze())
            return True
        if command == "\\scoreboard":
            if not self.tracing:
                self.write(
                    "tracing is off — \\trace to re-enable span collection"
                )
                return True
            self.write(self.scoreboard.render())
            return True
        if command == "\\feedback":
            if argument.strip().lower() == "clear":
                dropped = self.adaptive.clear()
                self.write(f"feedback: dropped {dropped} calibration(s)")
            else:
                self.write(self.adaptive.render())
            return True
        if command == "\\trace":
            self.tracing = not self.tracing
            self.engine.set_tracer(self.tracer if self.tracing else None)
            self.write(f"tracing {'on' if self.tracing else 'off'}")
            return True
        if command == "\\workload":
            self._workload(argument.split())
            return True
        if command == "\\views":
            self._views()
            return True
        if command == "\\health":
            if self._telemetry_off():
                return True
            self.telemetry.tick(self.clock())
            self.write(self.telemetry.render_dashboard())
            return True
        if command == "\\slo":
            if self._telemetry_off():
                return True
            self.telemetry.tick(self.clock())
            self.write(self.telemetry.slo.render())
            return True
        if command == "\\alerts":
            if self._telemetry_off():
                return True
            self.telemetry.tick(self.clock())
            self.write(self.telemetry.alerts.render())
            return True
        if command == "\\help":
            self.write(self._help_text())
            return True
        self.write(
            f"unknown command {command!r} "
            "(try \\help \\sources \\tables \\explain \\lint \\profile "
            "\\scoreboard \\feedback \\workload \\views \\health \\slo "
            "\\alerts \\quit)"
        )
        return True

    def _telemetry_off(self) -> bool:
        if self.telemetry is None:
            self.write(
                "telemetry is off — start the shell with telemetry enabled "
                "(Shell(telemetry=True), the default)"
            )
            return True
        return False

    @staticmethod
    def _help_text() -> str:
        """The Commands section of the module docstring, verbatim."""
        lines = (__doc__ or "").splitlines()
        try:
            start = next(i for i, l in enumerate(lines) if l.startswith("Commands:"))
        except StopIteration:
            return __doc__ or ""
        end = start + 1
        while end < len(lines) and (not lines[end] or lines[end].startswith(" ")):
            end += 1
        return "\n".join(lines[start:end]).rstrip()

    def _workload(self, args: list) -> None:
        """Run a seeded concurrent workload and print the tenant table."""
        from repro.sched import (
            DEFAULT_TENANTS,
            SchedulerConfig,
            WorkloadScheduler,
            make_workload,
        )

        try:
            n = int(args[0]) if args else 25
            seed = int(args[1]) if len(args) > 1 else 0
        except ValueError:
            self.write("usage: \\workload [n [seed]]")
            return
        requests = make_workload(n, seed=seed)
        scheduler = WorkloadScheduler(
            self.engine,
            tenants=DEFAULT_TENANTS,
            config=SchedulerConfig(),
            scoreboard=self.scoreboard if self.tracing else None,
            telemetry=self.telemetry,
        )
        result = scheduler.run(requests)
        self.write(result.render())

    def _views(self) -> None:
        """Materialized-view status plus the advisor's current ranking."""
        manager = self.engine.views
        if manager is None:
            self.write("views are off (EngineConfig(views=True) to enable)")
            return
        names = manager.materialized_names()
        if not names:
            self.write("no materialized views yet")
        else:
            now = self.clock() if self.clock is not None else None
            for name in names:
                view = manager.view(name)
                state = "dirty" if view.dirty else "fresh"
                self.write(
                    f"  {name:20} {state:5} "
                    f"staleness={view.staleness(now):8.1f}s "
                    f"refreshes={view.refresh_count} serves={view.serve_count}"
                )
        selector = self.engine.view_selector
        if selector is None:
            return
        recommendations = selector.recommendations(limit=5)
        if recommendations:
            self.write("advisor ranking (benefit = repeats x seconds / byte):")
        for rec in recommendations:
            status = (
                f"materialized as {rec.materialized_as}"
                if rec.materialized_as
                else "candidate"
            )
            sql = rec.sql if len(rec.sql) <= 56 else rec.sql[:53] + "..."
            self.write(
                f"  {rec.benefit:10.2e}  x{rec.count:<3} {status:28} {sql}"
            )

    def _lint(self, argument: str) -> None:
        """Static analysis of one query, or of a workspace directory."""
        import os

        from repro.analysis import QueryAnalyzer, lint_workspace

        if os.path.exists(argument):
            report = lint_workspace(argument, self.engine.catalog)
        else:
            report = QueryAnalyzer(catalog=self.engine.catalog).analyze(argument)
        for diagnostic in report:
            self.write(f"  {diagnostic.render()}")
        self.write(report.headline())

    def _run_sql(self, sql: str) -> None:
        try:
            result = self.engine.query(sql)
        except EIIError as exc:
            self.write(f"error: {exc}")
            return
        if self.clock is not None:
            # telemetry mode: the shell's timeline advances by each query's
            # simulated elapsed time, rolling health/SLO windows forward
            self.clock.advance(result.elapsed_seconds)
        self.write(result.relation.pretty())
        if self.show_metrics:
            summary = result.metrics.summary()
            self.write(
                f"-- {len(result.relation)} rows; "
                f"{summary['source_queries']} component queries; "
                f"{summary['rows_shipped']} rows / {summary['wire_bytes']} bytes shipped; "
                f"{result.elapsed_seconds:.4f}s simulated"
            )

    # -- loops ---------------------------------------------------------------------

    def run(self, stream=None) -> None:
        interactive = stream is None and sys.stdin.isatty()
        stream = stream or sys.stdin
        if interactive:
            self.write("repro federated SQL shell — \\tables to look around, \\quit to exit")
        while True:
            if interactive:
                self.out.write("eii> ")
                self.out.flush()
            line = stream.readline()
            if not line:
                break
            if not self.handle(line):
                break


def main(argv=None) -> int:
    scale = 1
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0].startswith("--scale="):
        scale = int(argv[0].split("=", 1)[1])
    Shell(scale=scale).run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
