"""The concurrent multi-query workload scheduler.

`WorkloadScheduler` runs a batch of `QueryRequest`s against one shared
`FederatedEngine` on the simulated clock: a discrete-event loop advances
virtual time through arrivals, fetch completions and query completions,
while weighted-fair queueing (`repro.sched.wfq`), per-source concurrency
limits, in-flight fetch coalescing (`repro.cache.InFlightRegistry`) and
deadline-based load shedding decide who runs when.

Correctness by construction: the *answer* to each admitted query comes
from one real `engine.query()` call issued at its virtual dispatch time,
in dispatch order — exactly the rows a serial run of the same sequence
would produce. Concurrency lives entirely in the virtual timeline (which
worker slot a fetch occupies, when it completes, what coalesces with
what), the same way the netsim "ships" bytes without sending packets. The
differential oracle suite (`tests/test_sched_oracle.py`) verifies the
construction: concurrent answers ≡ serial answers, with and without fault
injection, and seeded runs replay byte-identically.

Virtual execution model, per dispatched query:

- its component fetches (from the engine's own per-fetch accounting)
  become tasks competing for `workers` global slots, subject to
  per-source limits; identical in-flight fetch keys coalesce;
- when its last fetch lands, an assembly stage (bind joins, local
  operators, final transfer — everything the engine charged beyond the
  prefetch makespan) runs uncontended;
- queue wait, service time and deadline outcome land in a
  `QueryOutcome`, per-tenant counters in `MetricsCollector`s, and the
  whole timeline in a manually-laid-out `repro.trace.Trace`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.cache import InFlightRegistry, fetch_key
from repro.common.errors import AdmissionError, EIIError
from repro.federation.engine import parallel_makespan
from repro.netsim.metrics import MetricsCollector
from repro.sched.request import (
    FAILED,
    OK,
    PARTIAL,
    REJECTED,
    SHED,
    QueryOutcome,
    QueryRequest,
    Tenant,
    WorkloadResult,
)
from repro.sched.wfq import FairQueue
from repro.telemetry.plane import resolve_telemetry
from repro.trace.span import Trace


@dataclass
class SchedulerConfig:
    """Knobs of the workload scheduler's virtual execution model."""

    #: global simulated fetch slots shared by every active query
    workers: int = 8
    #: queries allowed past the admission queue at once (None = `workers`)
    max_active: Optional[int] = None
    #: bound on the admission queue; arrivals past it are rejected with an
    #: `AdmissionError` carrying the queue state (None = unbounded)
    queue_depth: Optional[int] = None
    #: "wfq" (weighted-fair across tenants, strict priorities) or "fifo"
    policy: str = "wfq"
    #: coalesce identical in-flight fetch keys across concurrent queries
    coalesce: bool = True
    #: per-source virtual concurrency caps, e.g. ``{"crm": 2}``; a source
    #: not listed is unlimited
    source_limits: Optional[dict] = None
    #: drop queries whose deadline already passed while they queued
    shed_late: bool = True
    #: reject queries predicted to run longer than this (None = admit all)
    admission_budget_s: Optional[float] = None
    #: keep the engine's SimClock in step with workload virtual time, so
    #: time-windowed behavior (cache TTLs, outage windows) sees the
    #: workload timeline; ignored when the engine clock can't be advanced
    advance_clock: bool = True
    #: build the workload `Trace` (byte-identical across seeded replays)
    trace: bool = True

    def __post_init__(self):
        self.workers = max(int(self.workers), 1)
        if self.max_active is None:
            self.max_active = self.workers
        self.max_active = max(int(self.max_active), 1)


@dataclass
class _FetchTask:
    """One component fetch of one active query, on the virtual timeline."""

    key: tuple
    source: str
    duration_s: float
    state: str = "pending"  # pending -> running | attached -> done


@dataclass
class _Active:
    """Bookkeeping for a dispatched (really-executed) query."""

    outcome: QueryOutcome
    tasks: list = field(default_factory=list)
    remaining: int = 0
    assembly_s: float = 0.0


class WorkloadScheduler:
    """Runs query workloads concurrently over one shared federated engine."""

    def __init__(
        self,
        engine,
        tenants: Optional[dict] = None,
        config: Optional[SchedulerConfig] = None,
        scoreboard=None,
        telemetry=None,
    ):
        self.engine = engine
        self.config = config or SchedulerConfig()
        #: tenant name -> `Tenant`; unknown tenants get weight-1 defaults
        self.tenants = {t.name: t for t in (tenants or {}).values()} if isinstance(
            tenants, dict
        ) else {t.name: t for t in (tenants or [])}
        #: optional `QueryScoreboard` fed one record per outcome
        self.scoreboard = scoreboard
        #: observe-only telemetry plane (no-op default). A plane passed
        #: here is shared with the engine (whose fetch/query hooks feed the
        #: same instruments); a plane already on the engine is inherited.
        engine_telemetry = getattr(engine, "telemetry", None)
        if telemetry is None and engine_telemetry is not None:
            self.telemetry = engine_telemetry
        else:
            self.telemetry = resolve_telemetry(telemetry)
            if self.telemetry.enabled and (
                engine_telemetry is None or not engine_telemetry.enabled
            ):
                if self.telemetry.clock is None:
                    clock = getattr(engine, "clock", None)
                    self.telemetry.clock = clock
                    self.telemetry.series.clock = clock
                engine.telemetry = self.telemetry
                resilience = getattr(engine, "resilience", None)
                if resilience is not None:
                    resilience.attach_telemetry(self.telemetry)

    # -- public ------------------------------------------------------------------

    def run(self, requests: list) -> WorkloadResult:
        """Execute `requests` on the virtual timeline; returns the account."""
        state = _RunState(self, list(requests))
        return state.run()


class _RunState:
    """One workload run's mutable state (the event loop lives here)."""

    def __init__(self, scheduler: WorkloadScheduler, requests: list):
        self.scheduler = scheduler
        self.engine = scheduler.engine
        self.config = scheduler.config
        self.telemetry = scheduler.telemetry
        self.requests = requests
        self.queue = FairQueue(
            tenants=dict(scheduler.tenants),
            depth=self.config.queue_depth,
            policy=self.config.policy,
        )
        self.inflight = InFlightRegistry()
        self.events: list = []  # heap of (time, seq, kind, payload)
        self.seq = 0
        self.now = 0.0
        self.free_workers = self.config.workers
        self.source_free = {
            name.lower(): int(limit)
            for name, limit in (self.config.source_limits or {}).items()
        }
        self.active: dict[int, _Active] = {}
        self.active_order: list[int] = []  # dispatch order of active ids
        self.outcomes: dict[int, QueryOutcome] = {}
        self.dispatched = 0
        self.serial_s = 0.0
        self.makespan_s = 0.0
        self.audit: list = []

    # -- event plumbing ----------------------------------------------------------

    def _push(self, time_s: float, kind: str, payload) -> None:
        heapq.heappush(self.events, (time_s, self.seq, kind, payload))
        self.seq += 1

    def run(self) -> WorkloadResult:
        for index, request in enumerate(self.requests):
            self.outcomes[index] = QueryOutcome(
                request, arrival_s=request.arrival_s
            )
            self._push(max(request.arrival_s, 0.0), "arrive", index)
        while self.events:
            time_s, _, kind, payload = heapq.heappop(self.events)
            self.now = max(self.now, time_s)
            if self.telemetry.enabled:
                # close telemetry windows up to virtual time before the
                # event lands in the window containing `now`
                self.telemetry.tick(self.now)
            if kind == "arrive":
                self._on_arrive(payload)
            elif kind == "fetch_done":
                self._on_fetch_done(*payload)
            elif kind == "query_done":
                self._on_query_done(payload)
            self._refill()
        return self._finalize()

    # -- arrival / admission -----------------------------------------------------

    def _estimate(self, request: QueryRequest) -> Optional[float]:
        """Predicted simulated elapsed for `request` (None when unplannable)."""
        try:
            plan = self.engine.prepare(request.sql)
            return self.engine.predict_elapsed(plan)
        except EIIError:
            return None

    def _on_arrive(self, index: int) -> None:
        request = self.requests[index]
        outcome = self.outcomes[index]
        estimate = self._estimate(request)
        budget = self.config.admission_budget_s
        if budget is not None and estimate is not None and estimate > budget:
            outcome.status = REJECTED
            outcome.finish_s = self.now
            outcome.error = str(
                AdmissionError(
                    f"query {request.label!r} predicted to take "
                    f"{estimate:.3f}s, over the {budget:.3f}s admission budget",
                    predicted_seconds=estimate,
                    queued=len(self.queue),
                    queue_depth=self.config.queue_depth,
                )
            )
            if self.telemetry.enabled:
                self.telemetry.on_outcome(outcome, now=self.now)
            return
        try:
            self.queue.push(
                request,
                self.now,
                service_estimate_s=estimate if estimate is not None else 1.0,
                token=index,
            )
        except AdmissionError as exc:
            outcome.status = REJECTED
            outcome.finish_s = self.now
            outcome.error = str(exc)
            if self.telemetry.enabled:
                self.telemetry.on_outcome(outcome, now=self.now)
            return
        if self.telemetry.enabled:
            self.telemetry.on_arrival(request.tenant, len(self.queue))

    # -- dispatch (the one place real execution happens) -------------------------

    def _dispatch(self, index: int) -> None:
        request = self.requests[index]
        outcome = self.outcomes[index]
        outcome.dispatch_s = self.now
        outcome.queue_wait_s = max(0.0, self.now - outcome.arrival_s)
        outcome.dispatch_index = self.dispatched
        self.dispatched += 1
        self._sync_clock()
        try:
            result = self.engine.query(request.sql)
        except EIIError as exc:
            metrics = getattr(exc, "metrics", None)
            duration = metrics.simulated_seconds if metrics is not None else 0.0
            outcome.status = FAILED
            outcome.error = str(exc)
            self.serial_s += duration
            active = _Active(outcome, tasks=[], remaining=0, assembly_s=duration)
            self._activate(index, active)
            self._push(self.now + duration, "query_done", index)
            return
        outcome.result = result
        outcome.status = PARTIAL if result.is_partial else OK
        self.serial_s += result.elapsed_seconds
        tasks, assembly_s = self._decompose(result)
        active = _Active(
            outcome, tasks=tasks, remaining=len(tasks), assembly_s=assembly_s
        )
        self._activate(index, active)
        if not tasks:
            self._push(self.now + assembly_s, "query_done", index)

    def _activate(self, index: int, active: _Active) -> None:
        self.active[index] = active
        self.active_order.append(index)

    def _sync_clock(self) -> None:
        """Advance the engine's SimClock to workload virtual time."""
        if not self.config.advance_clock:
            return
        clock = getattr(self.engine, "clock", None)
        if clock is None or not hasattr(clock, "advance"):
            return  # wall clock (time.time) — nothing to keep in step
        behind = self.now - clock.now()
        if behind > 0:
            clock.advance(behind)

    def _decompose(self, result) -> "tuple[list, float]":
        """Split one executed query into fetch tasks + an assembly stage.

        Falls back to a single opaque stage when per-fetch durations can't
        be paired with plan nodes (whole-result cache hits, or an adaptive
        engine whose LPT pass reordered submissions).
        """
        fetches = result.plan.fetches if result.plan is not None else []
        durations = result.fetch_seconds
        adaptive = getattr(self.engine, "adaptive", None)
        reordered = adaptive is not None and adaptive.policy.lpt
        if (
            result.from_cache
            or not fetches
            or reordered
            or len(durations) != len(fetches)
        ):
            return [], result.elapsed_seconds
        tasks = [
            _FetchTask(
                key=fetch_key(node.source.name, node.stmt),
                source=node.source.name.lower(),
                duration_s=duration,
            )
            for node, duration in zip(fetches, durations)
        ]
        fetch_elapsed = parallel_makespan(durations, self.engine.parallel_workers)
        assembly_s = max(0.0, result.elapsed_seconds - fetch_elapsed)
        return tasks, assembly_s

    # -- the scheduling round ----------------------------------------------------

    def _refill(self) -> None:
        """Admit queued queries and hand pending fetches to free slots."""
        while len(self.active) < self.config.max_active:
            entry = self.queue.pop()
            if entry is None:
                break
            request = entry.request
            index = entry.token
            deadline = request.deadline_s
            if (
                self.config.shed_late
                and deadline is not None
                and self.now > deadline
            ):
                self._shed(index)
                continue
            self._dispatch(index)
        startable_blocked = 0
        for index in self.active_order:
            active = self.active.get(index)
            if active is None:
                continue
            for task in active.tasks:
                if task.state != "pending":
                    continue
                if self.config.coalesce and self.inflight.get(task.key) is not None:
                    task.state = "attached"
                    self.inflight.attach(
                        task.key, (index, task), seconds_saved=task.duration_s
                    )
                    active.outcome.coalesced_fetches += 1
                    active.outcome.coalesced_seconds_saved += task.duration_s
                    continue
                if self.free_workers <= 0:
                    continue
                if not self._source_available(task.source):
                    continue
                self._start_task(index, task)
        # audit: a pending task with a free worker AND a free source slot
        # should not exist after this round (work conservation)
        if self.free_workers > 0:
            for index in self.active_order:
                active = self.active.get(index)
                if active is None:
                    continue
                for task in active.tasks:
                    if task.state == "pending" and self._source_available(
                        task.source
                    ):
                        startable_blocked += 1
        self.audit.append(
            (
                round(self.now, 9),
                self.free_workers,
                len(self.queue),
                len(self.active),
                startable_blocked,
            )
        )

    def _source_available(self, source: str) -> bool:
        free = self.source_free.get(source)
        return free is None or free > 0

    def _start_task(self, index: int, task: _FetchTask) -> None:
        task.state = "running"
        self.free_workers -= 1
        if task.source in self.source_free:
            self.source_free[task.source] -= 1
        if self.config.coalesce:
            self.inflight.begin(
                task.key, done_at=self.now + task.duration_s, seconds=task.duration_s
            )
        self._push(self.now + task.duration_s, "fetch_done", (index, id(task)))

    # -- completions -------------------------------------------------------------

    def _on_fetch_done(self, index: int, task_id: int) -> None:
        active = self.active[index]
        task = next(t for t in active.tasks if id(t) == task_id)
        self.free_workers += 1
        if task.source in self.source_free:
            self.source_free[task.source] += 1
        finished = [(index, task)]
        if self.config.coalesce:
            flight = self.inflight.complete(task.key)
            finished.extend(flight.attached)
        for query_index, done_task in finished:
            done_task.state = "done"
            follower = self.active[query_index]
            follower.remaining -= 1
            if follower.remaining == 0:
                self._push(
                    self.now + follower.assembly_s, "query_done", query_index
                )

    def _on_query_done(self, index: int) -> None:
        active = self.active.pop(index)
        self.active_order.remove(index)
        outcome = active.outcome
        outcome.finish_s = self.now
        outcome.service_s = max(0.0, self.now - outcome.dispatch_s)
        deadline = outcome.request.deadline_s
        if deadline is not None and outcome.finish_s > deadline:
            outcome.deadline_missed = True
        self.makespan_s = max(self.makespan_s, self.now)
        if self.telemetry.enabled:
            self.telemetry.on_outcome(outcome, now=self.now)

    def _shed(self, index: int) -> None:
        outcome = self.outcomes[index]
        wait = max(0.0, self.now - outcome.arrival_s)
        outcome.status = SHED
        outcome.finish_s = self.now
        outcome.queue_wait_s = wait
        outcome.error = str(
            AdmissionError(
                f"query {outcome.request.label!r} shed: deadline "
                f"{outcome.request.deadline_s:.3f}s passed after "
                f"{wait:.3f}s in the queue",
                queued=len(self.queue),
                queue_depth=self.config.queue_depth,
                queue_wait_s=wait,
            )
        )
        self.makespan_s = max(self.makespan_s, self.now)
        if self.telemetry.enabled:
            self.telemetry.on_outcome(outcome, now=self.now)

    # -- finalization ------------------------------------------------------------

    def _finalize(self) -> WorkloadResult:
        outcomes = [self.outcomes[i] for i in range(len(self.requests))]
        result = WorkloadResult(
            outcomes=outcomes,
            makespan_s=self.makespan_s,
            serial_s=self.serial_s,
            metrics=MetricsCollector(network=self.engine.network),
            audit=self.audit,
        )
        for outcome in outcomes:
            tenant_name = outcome.request.tenant
            tenant = result.tenant_metrics.get(tenant_name)
            if tenant is None:
                tenant = result.tenant_metrics[tenant_name] = MetricsCollector(
                    network=self.engine.network
                )
            for collector in (result.metrics, tenant):
                if outcome.result is not None:
                    collector.merge(outcome.result.metrics)
                if outcome.dispatch_index >= 0:
                    collector.queue_wait_seconds += outcome.queue_wait_s
                collector.coalesced_fetches += outcome.coalesced_fetches
                collector.coalesced_seconds_saved += (
                    outcome.coalesced_seconds_saved
                )
                collector.shed_queries += outcome.status == SHED
                collector.rejected_queries += outcome.status == REJECTED
                collector.deadline_misses += outcome.deadline_missed
            if self.scheduler.scoreboard is not None:
                self.scheduler.scoreboard.record_outcome(outcome)
        if self.telemetry.enabled:
            # one last roll so the workload's final window closes, then
            # stamp the plane's headline counters into the account
            self.telemetry.tick(self.makespan_s + self.telemetry.series.window_s)
            self.telemetry.stamp(result.metrics)
        if self.config.trace:
            result.trace = self._build_trace(result)
        return result

    def _build_trace(self, result: WorkloadResult) -> Trace:
        """Lay the workload out as a span tree on the virtual timeline.

        The layout is explicit (each span's `start_s`/`lane` is assigned
        here, and `finalize()` is bypassed) because the schedule — not
        serial or list-scheduled composition — determined the starts. The
        root's `makespan_s`/`serial_s` attrs carry the run-level timings;
        its summed extent is the workload's total turnaround.
        """
        config = self.config
        trace = Trace(
            "workload",
            policy=config.policy,
            workers=config.workers,
            max_active=config.max_active,
            coalesce=config.coalesce,
            queries=len(result.outcomes),
        )
        trace.root.set(
            makespan_s=round(result.makespan_s, 9),
            serial_s=round(result.serial_s, 9),
            coalesced_fetches=result.metrics.coalesced_fetches,
        )
        for outcome in result.outcomes:
            span = trace.root.child(
                f"query:{outcome.request.label}",
                category="sched.query",
                tenant=outcome.request.tenant,
                status=outcome.status,
                dispatch_index=outcome.dispatch_index,
            )
            span.start_s = outcome.arrival_s
            if outcome.dispatch_index >= 0:
                span.lane = 1 + outcome.dispatch_index % config.workers
            if outcome.coalesced_fetches:
                span.set(
                    coalesced_fetches=outcome.coalesced_fetches,
                    coalesced_seconds_saved=round(
                        outcome.coalesced_seconds_saved, 9
                    ),
                )
            if outcome.status in (SHED, REJECTED):
                span.event("sched." + outcome.status, 0.0, error=outcome.error)
                continue
            queued = span.child("queued", category="sched.wait")
            queued.self_seconds = outcome.queue_wait_s
            queued.start_s = outcome.arrival_s
            queued.lane = span.lane
            service = span.child("service", category="sched.service")
            service.self_seconds = outcome.service_s
            service.start_s = outcome.dispatch_s
            service.lane = span.lane
            if outcome.deadline_missed:
                span.event(
                    "sched.deadline_missed",
                    max(0.0, outcome.finish_s - outcome.arrival_s),
                    deadline_s=outcome.request.deadline_s,
                )
        trace.finalized = True  # explicit layout: do not re-run finalize()
        return trace


__all__ = [
    "SchedulerConfig",
    "Tenant",
    "WorkloadScheduler",
]
