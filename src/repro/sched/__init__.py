"""Concurrent multi-query workload scheduling over the federated engine.

The mediator in the paper's §5 serves *workloads*, not single queries:
many tenants' dashboards, reports and batch jobs share one integration
layer and its per-source capacity. This package adds that layer —
weighted-fair queueing across tenants (`repro.sched.wfq`), per-source
concurrency limits (`repro.sched.limits`), in-flight fetch coalescing
(`repro.cache.InFlightRegistry`), deadline-based load shedding, and the
`WorkloadScheduler` event loop tying them together on the simulated
clock.

Design invariant (what the differential oracle tests): concurrency is
purely a virtual-time account. Every admitted query's rows come from one
real `engine.query()` call made in dispatch order, so a concurrent run
answers exactly what the same queries answered serially — with or
without fault injection — while the makespan, queue waits, and
coalescing savings describe the concurrent timeline.
"""

from repro.sched.limits import SourceLimiter
from repro.sched.request import (
    ANSWERED,
    FAILED,
    OK,
    PARTIAL,
    REJECTED,
    SHED,
    QueryOutcome,
    QueryRequest,
    Tenant,
    WorkloadResult,
)
from repro.sched.scheduler import SchedulerConfig, WorkloadScheduler
from repro.sched.wfq import FairQueue
from repro.sched.workload import DEFAULT_TENANTS, make_workload

__all__ = [
    "ANSWERED",
    "DEFAULT_TENANTS",
    "FAILED",
    "FairQueue",
    "OK",
    "PARTIAL",
    "QueryOutcome",
    "QueryRequest",
    "REJECTED",
    "SHED",
    "SchedulerConfig",
    "SourceLimiter",
    "Tenant",
    "WorkloadResult",
    "WorkloadScheduler",
    "make_workload",
]
