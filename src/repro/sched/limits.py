"""Per-source concurrency limits for the engine's real thread pool.

The federated engine's prefetch pool happily points every worker at the
same source; when that source is the slow one, the whole pool stalls
behind it. A `SourceLimiter` attached to the engine
(``FederatedEngine(..., source_limiter=...)``) caps how many pool threads
may be inside any one source's round trips at a time — surplus callers
block until a slot frees, leaving the other workers free to make progress
against healthy sources.

Wall-clock shaping only: simulated time comes from the metrics layer and
is untouched. The workload scheduler applies the *same* per-source caps
to its virtual timeline (see `SchedulerConfig.source_limits`), so the
simulated account and the thread behavior agree.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import Optional


class SourceLimiter:
    """Named counting semaphores with peak-concurrency instrumentation.

    Every instrumentation counter (`_in_flight`, `peak`, `acquired`,
    `released`) is read and written only under `_guard` — pool threads hit
    these paths concurrently, and an unguarded `dict[name] += 1` is a
    lost-update race the concurrency lint (EII502) would rightly flag.
    """

    def __init__(self, limits: Optional[dict] = None, default: Optional[int] = None):
        """`limits` maps source name -> max concurrent calls; `default`
        applies to unnamed sources (None = unlimited)."""
        self.limits = {name.lower(): limit for name, limit in (limits or {}).items()}
        self.default = default
        self._semaphores: dict[str, threading.BoundedSemaphore] = {}
        self._guard = threading.Lock()
        self._in_flight: dict[str, int] = {}
        #: highest concurrency ever observed per source (for assertions)
        self.peak: dict[str, int] = {}
        #: cumulative slot acquisitions / releases per source; `drained()`
        #: compares the two so the sanitizer can prove no slot leaked
        self.acquired: dict[str, int] = {}
        self.released: dict[str, int] = {}

    def limit_for(self, source_name: str) -> Optional[int]:
        return self.limits.get(source_name.lower(), self.default)

    def _semaphore(self, name: str, limit: int) -> threading.BoundedSemaphore:
        with self._guard:
            semaphore = self._semaphores.get(name)
            if semaphore is None:
                semaphore = self._semaphores[name] = threading.BoundedSemaphore(limit)
            return semaphore

    def slot(self, source_name: str):
        """Context manager holding one concurrency slot against the source."""
        name = source_name.lower()
        limit = self.limit_for(name)
        if limit is None:
            return nullcontext()
        return self._slot(name, self._semaphore(name, limit))

    @contextmanager
    def _slot(self, name: str, semaphore: threading.BoundedSemaphore):
        semaphore.acquire()
        with self._guard:
            count = self._in_flight.get(name, 0) + 1
            self._in_flight[name] = count
            self.peak[name] = max(self.peak.get(name, 0), count)
            self.acquired[name] = self.acquired.get(name, 0) + 1
        try:
            yield
        finally:
            with self._guard:
                self._in_flight[name] -= 1
                self.released[name] = self.released.get(name, 0) + 1
            semaphore.release()

    def in_flight(self, source_name: str) -> int:
        """Current slot holders for `source_name` (guarded read)."""
        with self._guard:
            return self._in_flight.get(source_name.lower(), 0)

    def drained(self) -> bool:
        """True when every acquired slot has been released."""
        with self._guard:
            return all(
                self.released.get(name, 0) == count
                for name, count in self.acquired.items()
            )

    def snapshot(self) -> dict:
        """Consistent copy of all counters, for assertions and telemetry."""
        with self._guard:
            return {
                "in_flight": dict(self._in_flight),
                "peak": dict(self.peak),
                "acquired": dict(self.acquired),
                "released": dict(self.released),
            }
