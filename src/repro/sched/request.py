"""Workload requests, tenants, and per-query / per-run outcome records.

A `QueryRequest` is one tenant's query with an arrival time on the
simulated clock and an optional absolute deadline. The scheduler turns
each request into a `QueryOutcome` — admitted or rejected, completed or
shed, with its queue wait and service time on the virtual timeline — and
the whole run into a `WorkloadResult` carrying aggregate and per-tenant
`MetricsCollector`s plus the workload trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.metrics import MetricsCollector

#: Outcome statuses (the full life cycle of a request).
OK = "ok"
PARTIAL = "partial"
FAILED = "failed"
SHED = "shed"
REJECTED = "rejected"

#: statuses for which the query actually executed and produced an answer
ANSWERED = (OK, PARTIAL)


@dataclass(frozen=True)
class Tenant:
    """A traffic class: its fair-share weight and dispatch priority.

    `weight` sets the tenant's share of dispatch bandwidth under weighted
    fair queueing (2.0 gets dispatched twice as often as 1.0 under
    backlog). `priority` is strict: a runnable higher-priority request
    always dispatches before any lower-priority one.
    """

    name: str
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r} needs a positive weight")


@dataclass
class QueryRequest:
    """One query submitted to the workload scheduler."""

    sql: str
    tenant: str = "default"
    #: display label (e.g. the bench mix key); defaults to the SQL itself
    name: str = ""
    #: arrival time on the workload's virtual clock
    arrival_s: float = 0.0
    #: absolute virtual-time deadline; None = best effort
    deadline_s: Optional[float] = None
    #: overrides the tenant's priority when set
    priority: Optional[int] = None

    @property
    def label(self) -> str:
        return self.name or self.sql


@dataclass
class QueryOutcome:
    """What happened to one request, on the virtual timeline."""

    request: QueryRequest
    status: str = OK
    #: the engine's answer (None for shed/rejected/failed requests)
    result: Optional[object] = None
    error: str = ""
    arrival_s: float = 0.0
    dispatch_s: float = 0.0
    finish_s: float = 0.0
    #: order in which the scheduler actually dispatched (and therefore
    #: really executed) the admitted requests; -1 = never dispatched
    dispatch_index: int = -1
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    deadline_missed: bool = False
    #: fetches this query coalesced onto another query's in-flight fetch
    coalesced_fetches: int = 0
    coalesced_seconds_saved: float = 0.0

    @property
    def answered(self) -> bool:
        return self.status in ANSWERED

    @property
    def turnaround_s(self) -> float:
        return self.queue_wait_s + self.service_s


@dataclass
class WorkloadResult:
    """The scheduler's account of one workload run."""

    outcomes: list = field(default_factory=list)
    #: virtual time at which the last outcome resolved
    makespan_s: float = 0.0
    #: sum of per-query service times — what a one-at-a-time FIFO run of
    #: the same dispatch sequence would have taken end to end
    serial_s: float = 0.0
    #: aggregate counters over every executed query, plus sched telemetry
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    #: per-tenant aggregates (same shape as `metrics`)
    tenant_metrics: dict = field(default_factory=dict)
    #: the workload span tree (`repro.trace.Trace`), manually laid out on
    #: the virtual timeline; None when the scheduler ran untraced
    trace: Optional[object] = None
    #: work-conservation audit: one `(time, free_workers, queued, active,
    #: startable_pending)` snapshot per scheduling round; a non-zero last
    #: element would mean the scheduler idled while work was runnable
    audit: list = field(default_factory=list)

    # -- selectors ---------------------------------------------------------------

    def answered(self) -> list:
        return [o for o in self.outcomes if o.answered]

    def by_status(self, status: str) -> list:
        return [o for o in self.outcomes if o.status == status]

    def by_tenant(self, tenant: str) -> list:
        return [o for o in self.outcomes if o.request.tenant == tenant]

    def in_dispatch_order(self) -> list:
        """Dispatched outcomes, in true (real-execution) dispatch order."""
        dispatched = [o for o in self.outcomes if o.dispatch_index >= 0]
        return sorted(dispatched, key=lambda o: o.dispatch_index)

    @property
    def speedup(self) -> float:
        """Serial-equivalent seconds per concurrent makespan second."""
        return self.serial_s / self.makespan_s if self.makespan_s > 0 else 1.0

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict:
        counts = {
            status: len(self.by_status(status))
            for status in (OK, PARTIAL, FAILED, SHED, REJECTED)
        }
        waits = [o.queue_wait_s for o in self.outcomes if o.dispatch_index >= 0]
        return {
            "queries": len(self.outcomes),
            **counts,
            "makespan_s": round(self.makespan_s, 6),
            "serial_s": round(self.serial_s, 6),
            "speedup": round(self.speedup, 4),
            "max_queue_wait_s": round(max(waits), 6) if waits else 0.0,
            "coalesced_fetches": self.metrics.coalesced_fetches,
            "coalesced_seconds_saved": round(
                self.metrics.coalesced_seconds_saved, 6
            ),
            "deadline_misses": self.metrics.deadline_misses,
        }

    def render(self) -> str:
        """Aligned per-tenant table plus the headline workload line."""
        from repro.trace.scoreboard import percentile

        headers = [
            "tenant",
            "queries",
            "answered",
            "shed",
            "rejected",
            "mean_wait_s",
            "p95_wait_s",
            "service_s",
            "misses",
        ]
        rows = []
        for tenant in sorted(self.tenant_metrics):
            mine = self.by_tenant(tenant)
            waits = [o.queue_wait_s for o in mine if o.dispatch_index >= 0]
            rows.append(
                [
                    tenant,
                    str(len(mine)),
                    str(sum(1 for o in mine if o.answered)),
                    str(len([o for o in mine if o.status == SHED])),
                    str(len([o for o in mine if o.status == REJECTED])),
                    f"{sum(waits) / len(waits):.4f}" if waits else "-",
                    f"{percentile(waits, 0.95):.4f}" if waits else "-",
                    f"{sum(o.service_s for o in mine):.4f}",
                    str(sum(1 for o in mine if o.deadline_missed)),
                ]
            )
        widths = [
            max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
            for i, header in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        s = self.summary()
        lines.append(
            f"workload: {s['queries']} queries "
            f"({s['ok']} ok, {s['partial']} partial, {s['failed']} failed, "
            f"{s['shed']} shed, {s['rejected']} rejected); "
            f"makespan {s['makespan_s']:.4f}s vs serial {s['serial_s']:.4f}s "
            f"({s['speedup']:.2f}x); {s['coalesced_fetches']} fetches coalesced "
            f"({s['coalesced_seconds_saved']:.4f}s saved)"
        )
        return "\n".join(lines)
