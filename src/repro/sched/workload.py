"""Seeded multi-tenant workload generation over the EIIBench query mix.

`make_workload(n, seed)` deterministically expands the bench mix
(`repro.bench.workload.QUERY_MIX`) into `n` `QueryRequest`s spread across
the default tenant classes, with Poisson-ish arrival spacing and
per-class deadlines — the standard input for the scheduler's oracle
tests and the A8 concurrency benchmark. Same seed, same workload,
always.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.bench.workload import QUERY_MIX, sample_mix
from repro.sched.request import QueryRequest, Tenant

#: The bench's three traffic classes. Dashboards are interactive: highest
#: weight, strict priority, tight deadlines. Analytics gets a double
#: share; batch takes whatever is left and never expires.
DEFAULT_TENANTS: dict[str, Tenant] = {
    "dashboard": Tenant("dashboard", weight=4.0, priority=1),
    "analytics": Tenant("analytics", weight=2.0, priority=0),
    "batch": Tenant("batch", weight=1.0, priority=0),
}

#: tenant assignment odds and relative deadline per class (None = none)
_TENANT_PROFILE = [
    ("dashboard", 5, 8.0),
    ("analytics", 3, 30.0),
    ("batch", 2, None),
]


def make_workload(
    n: int,
    seed: int = 0,
    mix: Optional[dict] = None,
    mean_gap_s: float = 0.05,
    deadlines: bool = True,
) -> list:
    """`n` seeded `QueryRequest`s over the bench mix.

    Arrivals are exponentially spaced with mean `mean_gap_s` simulated
    seconds (so the workload genuinely overlaps); tenants are drawn from
    `_TENANT_PROFILE`; deadline-bearing classes get their class deadline
    relative to arrival. Everything is a function of (`n`, `seed`, `mix`,
    `mean_gap_s`, `deadlines`) only.
    """
    rng = random.Random(seed)
    picks = sample_mix(n, rng, mix or QUERY_MIX)
    tenant_names = [name for name, _, _ in _TENANT_PROFILE]
    tenant_weights = [odds for _, odds, _ in _TENANT_PROFILE]
    relative_deadline = {name: rel for name, _, rel in _TENANT_PROFILE}
    requests = []
    arrival = 0.0
    for index, (name, sql) in enumerate(picks):
        arrival += rng.expovariate(1.0 / mean_gap_s) if mean_gap_s > 0 else 0.0
        tenant = rng.choices(tenant_names, weights=tenant_weights, k=1)[0]
        rel = relative_deadline[tenant] if deadlines else None
        requests.append(
            QueryRequest(
                sql,
                tenant=tenant,
                name=f"{name}#{index}",
                arrival_s=round(arrival, 6),
                deadline_s=round(arrival + rel, 6) if rel is not None else None,
            )
        )
    return requests
