"""Weighted-fair admission queueing across tenants, with priorities.

Start-time fair queueing over a virtual-time axis: each tenant keeps a
virtual finish tag; enqueueing a request stamps it with
``max(global_virtual_time, tenant_tag)`` plus ``service / weight``, and
the queue always releases the runnable request with the lowest
``(−priority, finish_tag, arrival_seq)``. Under backlog every tenant
therefore drains in proportion to its weight — a flood from one tenant
cannot starve another — while strict priorities still let interactive
traffic jump batch traffic.

The queue is bounded: pushing past `depth` raises `AdmissionError`
carrying the queue state (the backpressure signal the submitting edge
propagates to its client). ``policy="fifo"`` degrades the same structure
to pure arrival order, which is the baseline the A8 benchmark measures
fairness against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import AdmissionError
from repro.sched.request import QueryRequest, Tenant


@dataclass(order=True)
class _Entry:
    """Heap entry; the sort key is (−priority, virtual finish tag, seq)."""

    sort_key: tuple
    request: QueryRequest = field(compare=False)
    enqueued_s: float = field(compare=False, default=0.0)
    service_estimate_s: float = field(compare=False, default=1.0)
    #: caller-owned handle (the scheduler stores the request's index here,
    #: so two identical requests stay distinguishable)
    token: object = field(compare=False, default=None)


class FairQueue:
    """Bounded tenant-fair ready queue for the workload scheduler."""

    def __init__(
        self,
        tenants: Optional[dict] = None,
        depth: Optional[int] = None,
        policy: str = "wfq",
    ):
        if policy not in ("wfq", "fifo"):
            raise ValueError(f"unknown queue policy {policy!r}")
        self.policy = policy
        self.depth = depth
        self.tenants: dict[str, Tenant] = dict(tenants or {})
        self._heap: list[_Entry] = []
        self._seq = 0
        #: per-tenant virtual finish tags and the global virtual clock
        self._tenant_tags: dict[str, float] = {}
        self._virtual_now = 0.0
        # lifetime counters (AdmissionError and render() report these)
        self.enqueued = 0
        self.dequeued = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._heap)

    def tenant(self, name: str) -> Tenant:
        """The registered tenant, or an implicit weight-1 default."""
        existing = self.tenants.get(name)
        if existing is None:
            existing = self.tenants[name] = Tenant(name)
        return existing

    # -- admission ---------------------------------------------------------------

    def push(
        self,
        request: QueryRequest,
        now: float,
        service_estimate_s: float = 1.0,
        token: object = None,
    ) -> None:
        """Enqueue `request`; raises `AdmissionError` when the queue is full."""
        if self.depth is not None and len(self._heap) >= self.depth:
            self.overflows += 1
            raise AdmissionError(
                f"admission queue full ({len(self._heap)}/{self.depth} "
                f"queued): rejecting {request.label!r}",
                queue_depth=self.depth,
                queued=len(self._heap),
                queue_wait_s=0.0,
            )
        tenant = self.tenant(request.tenant)
        priority = (
            request.priority if request.priority is not None else tenant.priority
        )
        estimate = max(service_estimate_s, 0.0)
        if self.policy == "fifo":
            sort_key = (0, 0.0, self._seq)
        else:
            tag = max(self._virtual_now, self._tenant_tags.get(tenant.name, 0.0))
            finish = tag + estimate / tenant.weight
            self._tenant_tags[tenant.name] = finish
            sort_key = (-priority, finish, self._seq)
        entry = _Entry(
            sort_key,
            request,
            enqueued_s=now,
            service_estimate_s=estimate,
            token=token,
        )
        self._seq += 1
        self.enqueued += 1
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[_Entry]:
        """The next request to dispatch, or None when the queue is empty."""
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self.dequeued += 1
        # Advance the virtual clock to the released request's start tag, so
        # a tenant idle through a busy period re-enters at "now" instead of
        # burning its saved-up share all at once.
        if self.policy == "wfq":
            start_tag = entry.sort_key[1] - (
                entry.service_estimate_s / self.tenant(entry.request.tenant).weight
            )
            self._virtual_now = max(self._virtual_now, start_tag)
        return entry

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "queued": len(self._heap),
            "depth": self.depth,
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "overflows": self.overflows,
        }
