"""Deterministic customer-360 enterprise generator."""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.types import DataType as T
from repro.federation import FederationCatalog
from repro.netmark import DocumentSource, NodeStore
from repro.sources import CsvSource, RelationalSource, WebServiceSource
from repro.storage import Database
from repro.wrappers import QUIRK_AWARE
from repro.wrappers.dialects import Dialect

CITIES = ["SF", "NY", "LA", "CHI", "SEA", "AUS", "BOS", "DEN"]
SEGMENTS = ["enterprise", "smb", "consumer"]
STATUSES = ["open", "shipped", "closed", "returned"]
CATEGORIES = ["storage", "network", "compute", "license", "service"]

_SYLLABLES = [
    "an", "bel", "cor", "dan", "el", "far", "gus", "hol", "ira", "jo",
    "kat", "lor", "mar", "nor", "ola", "pat", "quin", "ros", "sam", "tia",
]


@dataclass
class BenchConfig:
    """Knobs of the generator; everything downstream is derived from these."""

    scale: int = 1
    seed: int = 42
    #: probability that a partner-directory field is corrupted (E6 knob)
    dirtiness: float = 0.15

    @property
    def customers(self) -> int:
        return 200 * self.scale

    @property
    def orders(self) -> int:
        return 1000 * self.scale

    @property
    def tickets(self) -> int:
        return 300 * self.scale

    @property
    def invoices(self) -> int:
        return 400 * self.scale

    @property
    def documents(self) -> int:
        return 60 * self.scale


@dataclass
class EnterpriseFixture:
    """Everything EIIBench generates, ready to register or query."""

    config: BenchConfig
    crm: Database
    sales: Database
    support: Database
    finance: Database
    marketing: CsvSource
    credit: WebServiceSource
    docstore: NodeStore
    docsource: DocumentSource
    #: the dirty partner directory rows (no shared key with crm.customers)
    partner_rows: list
    #: ground truth: (customer id, contact id) pairs that refer to the same person
    truth_pairs: set
    #: per-document text, for search experiments: doc name -> text
    doc_texts: dict = field(default_factory=dict)

    def catalog(
        self,
        crm_dialect: Dialect = QUIRK_AWARE,
        sales_dialect: Dialect = QUIRK_AWARE,
        support_dialect: Dialect = QUIRK_AWARE,
        finance_dialect: Dialect = QUIRK_AWARE,
        include_credit: bool = True,
        include_docs: bool = True,
        wrap=None,
    ) -> FederationCatalog:
        """A fresh federation catalog over the fixture's sources.

        `wrap` (e.g. `FaultInjector.wrap`) is applied to every source
        before registration, so fault-tolerance tests and benchmarks can
        script failures against the standard enterprise.
        """
        if wrap is None:
            wrap = lambda source: source  # noqa: E731
        catalog = FederationCatalog()
        catalog.register_source(
            wrap(RelationalSource("crm", self.crm, dialect=crm_dialect))
        )
        catalog.register_source(
            wrap(RelationalSource("sales", self.sales, dialect=sales_dialect))
        )
        catalog.register_source(
            wrap(RelationalSource("support", self.support, dialect=support_dialect))
        )
        catalog.register_source(
            wrap(RelationalSource("finance", self.finance, dialect=finance_dialect))
        )
        catalog.register_source(wrap(self.marketing))
        if include_credit:
            catalog.register_source(wrap(self.credit))
        if include_docs:
            catalog.register_source(wrap(self.docsource))
        return catalog


def _name(rng: random.Random) -> str:
    parts = rng.randint(2, 3)
    word = "".join(rng.choice(_SYLLABLES) for _ in range(parts))
    return word.capitalize()


def _date(rng: random.Random, start=datetime.date(2003, 1, 1), days=900):
    return start + datetime.timedelta(days=rng.randint(0, days))


def build_enterprise(config: Optional[BenchConfig] = None) -> EnterpriseFixture:
    """Generate the full enterprise deterministically from the config."""
    config = config or BenchConfig()
    rng = random.Random(config.seed)

    # -- CRM -----------------------------------------------------------------
    crm = Database("crm")
    crm.create_table(
        "customers",
        [
            ("id", T.INT),
            ("name", T.STRING),
            ("email", T.STRING),
            ("city", T.STRING),
            ("segment", T.STRING),
            ("created", T.DATE),
        ],
        primary_key=["id"],
    )
    customer_names: dict[int, tuple] = {}
    for cust_id in range(1, config.customers + 1):
        first, last = _name(rng), _name(rng)
        city = rng.choice(CITIES)
        email = f"{first.lower()}.{last.lower()}@example.com"
        customer_names[cust_id] = (first, last, city, email)
        crm.table("customers").insert(
            (
                cust_id,
                f"{first} {last}",
                email,
                city,
                rng.choice(SEGMENTS),
                _date(rng),
            )
        )

    # -- Sales ------------------------------------------------------------------
    sales = Database("sales")
    sales.create_table(
        "products",
        [
            ("id", T.INT),
            ("name", T.STRING),
            ("category", T.STRING),
            ("price", T.FLOAT),
        ],
        primary_key=["id"],
    )
    n_products = 20 + 10 * config.scale
    for product_id in range(1, n_products + 1):
        sales.table("products").insert(
            (
                product_id,
                f"{rng.choice(CATEGORIES)}-{product_id:03d}",
                rng.choice(CATEGORIES),
                round(rng.uniform(5, 2000), 2),
            )
        )
    sales.create_table(
        "orders",
        [
            ("id", T.INT),
            ("cust_id", T.INT),
            ("product_id", T.INT),
            ("order_date", T.DATE),
            ("quantity", T.INT),
            ("total", T.FLOAT),
            ("status", T.STRING),
        ],
        primary_key=["id"],
    )
    for order_id in range(1, config.orders + 1):
        # Zipf-ish skew: low customer ids order more (realistic hot accounts).
        cust_id = min(
            int(rng.paretovariate(1.2)), config.customers - 1
        ) % config.customers + 1
        product_id = rng.randint(1, n_products)
        quantity = rng.randint(1, 9)
        price = sales.table("products").get(product_id)[3]
        sales.table("orders").insert(
            (
                order_id,
                cust_id,
                product_id,
                _date(rng),
                quantity,
                round(price * quantity, 2),
                rng.choice(STATUSES),
            )
        )

    # -- Support --------------------------------------------------------------------
    support = Database("support")
    support.create_table(
        "tickets",
        [
            ("id", T.INT),
            ("cust_id", T.INT),
            ("opened", T.DATE),
            ("severity", T.INT),
            ("state", T.STRING),
            ("subject", T.STRING),
        ],
        primary_key=["id"],
    )
    subjects = ["login failure", "billing dispute", "slow dashboard",
                "data export", "api timeout", "password reset"]
    for ticket_id in range(1, config.tickets + 1):
        support.table("tickets").insert(
            (
                ticket_id,
                rng.randint(1, config.customers),
                _date(rng),
                rng.randint(1, 4),
                rng.choice(["open", "pending", "resolved"]),
                rng.choice(subjects),
            )
        )

    # -- Finance ---------------------------------------------------------------------
    finance = Database("finance")
    finance.create_table(
        "invoices",
        [
            ("id", T.INT),
            ("cust_id", T.INT),
            ("amount", T.FLOAT),
            ("paid", T.BOOL),
            ("due_date", T.DATE),
        ],
        primary_key=["id"],
    )
    for invoice_id in range(1, config.invoices + 1):
        finance.table("invoices").insert(
            (
                invoice_id,
                rng.randint(1, config.customers),
                round(rng.uniform(50, 9000), 2),
                rng.random() < 0.8,
                _date(rng),
            )
        )

    # -- Marketing spreadsheet ----------------------------------------------------------
    marketing = CsvSource("marketing")
    marketing.add_table(
        "regions",
        [("city", T.STRING), ("region", T.STRING)],
        [
            ("SF", "west"), ("LA", "west"), ("SEA", "west"), ("DEN", "west"),
            ("NY", "east"), ("BOS", "east"), ("CHI", "central"), ("AUS", "central"),
        ],
    )
    marketing.add_table(
        "campaigns",
        [("segment", T.STRING), ("campaign", T.STRING), ("budget", T.FLOAT)],
        [
            ("enterprise", "wine-and-dine", 250000.0),
            ("smb", "webinar-series", 40000.0),
            ("consumer", "social-blast", 90000.0),
        ],
    )

    # -- Credit web service (binding pattern on cust_id) -----------------------------------
    credit = WebServiceSource(
        "creditsvc",
        "credit",
        [("cust_id", T.INT), ("score", T.INT), ("rating", T.STRING)],
        "cust_id",
        rows=[
            (
                cust_id,
                score := rng.randint(450, 850),
                "A" if score > 750 else "B" if score > 600 else "C",
            )
            for cust_id in range(1, config.customers + 1)
        ],
    )

    # -- Documents (NETMARK) ------------------------------------------------------------
    docstore = NodeStore("docs")
    doc_texts: dict[str, str] = {}
    for doc_index in range(config.documents):
        cust_id = rng.randint(1, config.customers)
        first, last, city, email = customer_names[cust_id]
        kind = rng.choice(["meeting_note", "news", "brochure"])
        text = (
            f"{kind} about {first} {last} from {city}: "
            f"{rng.choice(subjects)} discussed, priority {rng.randint(1, 5)}"
        )
        doc_name = f"{kind}_{doc_index:04d}"
        doc_texts[doc_name] = text
        docstore.ingest(
            doc_name,
            {
                "kind": kind,
                "customer": {"id": str(cust_id), "name": f"{first} {last}"},
                "body": text,
                "priority": str(rng.randint(1, 5)),
            },
        )
    docsource = DocumentSource("docs", docstore)
    docsource.define_view(
        "doc_index",
        [
            ("kind", "kind", T.STRING),
            ("cust_id", "customer/id", T.INT),
            ("cust_name", "customer/name", T.STRING),
            ("priority", "priority", T.INT),
        ],
    )

    # -- Dirty partner directory (no shared key; E6 ground truth) ---------------------------
    partner_rows: list = []
    truth_pairs: set = set()
    contact_id = 1000
    for cust_id in range(1, config.customers + 1):
        if rng.random() < 0.7:  # 70% of customers appear in the directory
            first, last, city, email = customer_names[cust_id]
            full_name = _corrupt(rng, f"{first} {last}", config.dirtiness)
            dirty_city = _corrupt(rng, city, config.dirtiness / 2)
            dirty_email = (
                None if rng.random() < config.dirtiness else email
            )
            partner_rows.append((contact_id, full_name, dirty_city, dirty_email))
            truth_pairs.add((cust_id, contact_id))
            contact_id += 1
    # plus some contacts with no CRM counterpart
    for _ in range(config.customers // 10):
        first, last = _name(rng), _name(rng)
        partner_rows.append(
            (contact_id, f"{first} {last}", rng.choice(CITIES), None)
        )
        contact_id += 1

    return EnterpriseFixture(
        config=config,
        crm=crm,
        sales=sales,
        support=support,
        finance=finance,
        marketing=marketing,
        credit=credit,
        docstore=docstore,
        docsource=docsource,
        partner_rows=partner_rows,
        truth_pairs=truth_pairs,
        doc_texts=doc_texts,
    )


def _corrupt(rng: random.Random, text: str, probability: float) -> str:
    """Inject a typo (swap, drop, or case change) with the given probability."""
    if rng.random() >= probability or len(text) < 3:
        return text
    kind = rng.choice(["swap", "drop", "case", "double"])
    position = rng.randint(1, len(text) - 2)
    if kind == "swap":
        chars = list(text)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    if kind == "drop":
        return text[:position] + text[position + 1 :]
    if kind == "double":
        return text[:position] + text[position] + text[position:]
    return text[:position] + text[position].swapcase() + text[position + 1 :]
