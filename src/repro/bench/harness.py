"""Output formatting shared by the experiment scripts under benchmarks/."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table (numbers right-aligned)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) if rendered else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for raw, row in zip(rows, rendered):
        cells = []
        for value, text, width in zip(raw, row, widths):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                cells.append(text.rjust(width))
            else:
                cells.append(text.ljust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        if abs(value) < 0.001:
            return f"{value:.1e}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_experiment(
    experiment_id: str,
    claim: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    notes: str = "",
) -> str:
    """Print one experiment's result block and return the text."""
    lines = [
        "=" * 72,
        f"{experiment_id}: {claim}",
        "=" * 72,
        format_table(headers, list(rows)),
    ]
    if notes:
        lines.append(f"note: {notes}")
    text = "\n".join(lines)
    print(text)
    return text
