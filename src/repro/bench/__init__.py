"""EIIBench: a standardized federated-integration benchmark.

Bitton §3: "to adequately measure EII performance, we need a standardized
benchmark — à la TPC." EIIBench models the customer-360 enterprise the
panel's application stories revolve around: a CRM database, a sales
database, a support database, a finance database, a marketing spreadsheet,
a credit-scoring web service with a binding pattern, a NETMARK document
store and a dirty partner directory with no shared key. `build_enterprise`
produces the whole thing deterministically from a seed and scale factor;
`repro.bench.workload` defines the query mix; `repro.bench.harness`
formats the result tables the experiment scripts print.
"""

from repro.bench.datagen import BenchConfig, EnterpriseFixture, build_enterprise
from repro.bench.workload import QUERY_MIX, queries
from repro.bench.harness import format_table, print_experiment

__all__ = [
    "BenchConfig",
    "EnterpriseFixture",
    "QUERY_MIX",
    "build_enterprise",
    "format_table",
    "print_experiment",
    "queries",
]
