"""The EIIBench query mix: twelve federated queries over the enterprise.

Q1-Q3 exercise single sources with increasing pushdown depth; Q4-Q8 are
the cross-source joins the panel's CRM and dashboard stories describe;
Q9-Q10 aggregate for analytics; Q11 drives the binding-pattern service;
Q12 is the full customer-360 assembly.
"""

from __future__ import annotations

QUERIES: dict[str, str] = {
    "q1_point_lookup": (
        "SELECT name, email, city FROM customers WHERE id = 7"
    ),
    "q2_filter_scan": (
        "SELECT id, total FROM orders WHERE status = 'open' AND total > 500"
    ),
    "q3_source_aggregate": (
        "SELECT status, COUNT(*) AS n, SUM(total) AS revenue "
        "FROM orders GROUP BY status"
    ),
    "q4_crm_sales_join": (
        "SELECT c.name, o.total, o.status FROM customers c "
        "JOIN orders o ON c.id = o.cust_id WHERE o.total > 1000"
    ),
    "q5_city_revenue": (
        "SELECT c.city, SUM(o.total) AS revenue FROM customers c "
        "JOIN orders o ON c.id = o.cust_id GROUP BY c.city ORDER BY revenue DESC"
    ),
    "q6_region_rollup": (
        "SELECT r.region, COUNT(*) AS orders FROM customers c "
        "JOIN orders o ON c.id = o.cust_id "
        "JOIN regions r ON c.city = r.city GROUP BY r.region"
    ),
    "q7_support_risk": (
        "SELECT c.name, t.severity, t.subject FROM customers c "
        "JOIN tickets t ON c.id = t.cust_id "
        "WHERE t.severity >= 3 AND t.state = 'open'"
    ),
    "q8_unpaid_invoices": (
        "SELECT c.name, i.amount FROM customers c "
        "JOIN invoices i ON c.id = i.cust_id "
        "WHERE i.paid = FALSE AND i.amount > 2000"
    ),
    "q9_segment_analytics": (
        "SELECT c.segment, COUNT(*) AS n, AVG(o.total) AS avg_order "
        "FROM customers c JOIN orders o ON c.id = o.cust_id "
        "GROUP BY c.segment"
    ),
    "q10_product_mix": (
        "SELECT p.category, SUM(o.quantity) AS units FROM products p "
        "JOIN orders o ON p.id = o.product_id GROUP BY p.category "
        "ORDER BY units DESC"
    ),
    "q11_credit_check": (
        "SELECT c.name, cr.score, cr.rating FROM customers c "
        "JOIN credit cr ON cr.cust_id = c.id WHERE c.segment = 'enterprise'"
    ),
    "q12_customer360": (
        "SELECT c.name, c.city, SUM(o.total) AS revenue, "
        "COUNT(DISTINCT t.id) AS tickets, MAX(cr.score) AS score "
        "FROM customers c "
        "JOIN orders o ON c.id = o.cust_id "
        "LEFT JOIN tickets t ON t.cust_id = c.id "
        "JOIN credit cr ON cr.cust_id = c.id "
        "WHERE c.segment = 'enterprise' "
        "GROUP BY c.name, c.city ORDER BY revenue DESC LIMIT 10"
    ),
}

#: Relative frequencies for mixed-workload experiments (dashboard-heavy).
QUERY_MIX: dict[str, int] = {
    "q1_point_lookup": 30,
    "q2_filter_scan": 15,
    "q4_crm_sales_join": 20,
    "q5_city_revenue": 10,
    "q7_support_risk": 10,
    "q9_segment_analytics": 10,
    "q12_customer360": 5,
}


def queries(names=None) -> dict:
    """The query dict, optionally restricted to `names`."""
    if names is None:
        return dict(QUERIES)
    return {name: QUERIES[name] for name in names}


def sample_mix(n: int, rng, mix=None) -> list:
    """`n` seeded draws from the workload mix as `(name, sql)` pairs.

    `rng` is a `random.Random` (or a seed int, for convenience); `mix`
    defaults to `QUERY_MIX`. Draws are weighted by the mix frequencies and
    fully determined by the RNG state, so the same seed always yields the
    same workload — the property the scheduler's replay tests depend on.
    """
    import random

    if isinstance(rng, int):
        rng = random.Random(rng)
    mix = dict(mix or QUERY_MIX)
    names = sorted(mix)
    weights = [mix[name] for name in names]
    picks = rng.choices(names, weights=weights, k=max(n, 0))
    return [(name, QUERIES[name]) for name in picks]
